"""Tests for ``repro lint``: the AST checker framework, the four
built-in checkers (against planted-violation fixtures under
``tests/fixtures/lint/``), pragma suppression, the baseline file, the
parse cache, JSON output shape, and the CLI wiring."""

import json
import re
from collections import Counter
from pathlib import Path

import pytest

from repro.devtools.lint import run_lint
from repro.devtools.lint.baseline import load_baseline, write_baseline
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.core import ParsedFile
from repro.devtools.lint.report import format_human

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parent.parent

DET_FILE = FIXTURES / "sim" / "det_violations.py"
SUPPRESSED_FILE = FIXTURES / "sim" / "det_suppressed.py"
PROC_FILE = FIXTURES / "proc_violations.py"
HOT_FILE = FIXTURES / "hot_violations.py"
REGISTRY_FILE = FIXTURES / "sim" / "registry_fixture.py"
ASYNC_FILE = FIXTURES / "serve" / "async_violations.py"
ASYNC_SUPPRESSED = FIXTURES / "serve" / "async_suppressed.py"
FORK_FILE = FIXTURES / "fork_violations.py"
MSG_FILE = FIXTURES / "msg_serve" / "serve" / "wire.py"
CTR_FILE = FIXTURES / "ctr_serve" / "serve" / "counters_fixture.py"


def _lint(paths, tests_dir=None, **kwargs):
    return run_lint(
        paths=[Path(p) for p in paths],
        root=FIXTURES,
        tests_dir=tests_dir,
        **kwargs,
    )


def _rules(result):
    return Counter(f.rule for f in result.findings)


# ----------------------------------------------------------------------
# Determinism checker
# ----------------------------------------------------------------------

def test_determinism_catches_planted_violations():
    result = _lint([DET_FILE], cache_path=None)
    assert _rules(result) == Counter(
        {"DET001": 1, "DET002": 2, "DET003": 1, "DET004": 2, "DET005": 2}
    )


def test_determinism_seeded_and_sorted_forms_pass():
    source = DET_FILE.read_text()
    lines = {
        f.line: f.rule
        for f in _lint([DET_FILE], cache_path=None).findings
    }
    for lineno, rule in lines.items():
        assert "clean" not in source.splitlines()[lineno - 1], (
            f"{rule} fired on a line documented as clean"
        )


def test_determinism_subsystem_scoping(tmp_path):
    # The same wall-clock read outside sim/core/cluster/trace/serve is
    # legal.
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    (tmp_path / "analysis").mkdir()
    outside = tmp_path / "analysis" / "mod.py"
    outside.write_text(src)
    (tmp_path / "core").mkdir()
    inside = tmp_path / "core" / "mod.py"
    inside.write_text(src)
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert [(f.path, f.rule) for f in result.findings] == [
        ("core/mod.py", "DET001")
    ]


def test_determinism_scope_includes_serve(tmp_path):
    """The serve daemon is inside the deterministic scope (its payloads
    carry a bit-identity oracle); only pragma'd lines are exempt."""
    from repro.devtools.lint.checkers.determinism import DETERMINISTIC_DIRS

    assert "serve" in DETERMINISTIC_DIRS
    (tmp_path / "serve").mkdir()
    flagged = tmp_path / "serve" / "mod.py"
    flagged.write_text("import time\n\ndef f():\n    return time.monotonic()\n")
    pragmad = tmp_path / "serve" / "ok.py"
    pragmad.write_text(
        "import time\n\ndef f():\n"
        "    return time.monotonic()  # lint: disable=DET001\n"
    )
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert [(f.path, f.rule) for f in result.findings] == [
        ("serve/mod.py", "DET001")
    ]


def test_repo_serve_wall_clock_is_pragmad_not_baselined():
    """Satellite contract: every wall-clock read in src/repro/serve is
    exempted by an inline pragma, never via the baseline file."""
    serve_dir = REPO_ROOT / "src" / "repro" / "serve"
    offenders = []
    for path in sorted(serve_dir.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "time.monotonic" in line and "disable=DET001" not in line:
                offenders.append(f"{path.name}:{lineno}")
    assert not offenders, offenders


# ----------------------------------------------------------------------
# Process-safety checker
# ----------------------------------------------------------------------

def test_process_safety_catches_planted_violations():
    result = _lint([PROC_FILE], cache_path=None)
    assert _rules(result) == Counter(
        {"PROC001": 3, "PROC002": 4, "PROC003": 3}
    )


def test_process_safety_module_level_names_pass():
    result = _lint([PROC_FILE], cache_path=None)
    source_lines = PROC_FILE.read_text().splitlines()
    for f in result.findings:
        assert "clean" not in source_lines[f.line - 1]


# ----------------------------------------------------------------------
# Hot-loop checker
# ----------------------------------------------------------------------

def test_hot_loop_catches_planted_violations():
    result = _lint([HOT_FILE], cache_path=None)
    assert _rules(result) == Counter(
        {"HOT001": 3, "HOT002": 3, "HOT003": 1}
    )


def test_hot_loop_only_fires_inside_marked_regions():
    # cold_loop has the identical body but no ``# lint: hot`` mark.
    result = _lint([HOT_FILE], cache_path=None)
    source = HOT_FILE.read_text().splitlines()
    cold_start = next(
        i for i, line in enumerate(source, 1) if "def cold_loop" in line
    )
    cold_end = next(
        i for i, line in enumerate(source, 1) if "def hot_function" in line
    )
    assert not [
        f for f in result.findings if cold_start <= f.line < cold_end
    ]


def test_hot_pragma_suppression():
    # hot_justified's sorted() carries a trailing disable pragma.
    result = _lint([HOT_FILE], cache_path=None)
    source = HOT_FILE.read_text().splitlines()
    justified = next(
        i for i, line in enumerate(source, 1) if "disable=HOT002" in line
    )
    assert not [f for f in result.findings if f.line == justified]


# ----------------------------------------------------------------------
# Oracle-parity checker
# ----------------------------------------------------------------------

def test_oracle_parity_full_coverage_is_clean():
    result = _lint(
        [REGISTRY_FILE], tests_dir=FIXTURES / "fake_tests_full",
        cache_path=None,
    )
    assert not result.findings


def test_oracle_parity_flags_uncovered_registrations():
    result = _lint(
        [REGISTRY_FILE], tests_dir=FIXTURES / "fake_tests_partial",
        cache_path=None,
    )
    assert _rules(result) == Counter({"ORA001": 2})
    flagged = {f.message.split("'")[1] for f in result.findings}
    assert flagged == {"fixture-reference", "fixture-oracle"}


# ----------------------------------------------------------------------
# Async-safety checker
# ----------------------------------------------------------------------

def test_async_safety_catches_planted_violations():
    result = _lint([ASYNC_FILE], cache_path=None)
    assert _rules(result) == Counter(
        {"ASYNC001": 5, "ASYNC002": 1, "ASYNC003": 1}
    )


def test_async_safety_one_hop_helper_attributed_to_async_call_site():
    result = _lint([ASYNC_FILE], cache_path=None)
    hops = [f for f in result.findings if "sync helper" in f.message]
    assert len(hops) == 1
    assert "flush_index" in hops[0].message
    source = ASYNC_FILE.read_text().splitlines()
    assert "one-hop" in source[hops[0].line - 1]


def test_async_safety_pragma_suppression():
    assert not _lint([ASYNC_SUPPRESSED], cache_path=None).findings


def test_async_blocking_rule_scoped_to_serve(tmp_path):
    # The identical blocking async def outside serve/ is not flagged
    # (nothing there owns a latency-critical event loop).
    (tmp_path / "analysis").mkdir()
    mod = tmp_path / "analysis" / "mod.py"
    mod.write_text("import time\n\nasync def f():\n    time.sleep(1)\n")
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert not result.findings


def test_async_create_task_drop_fires_everywhere(tmp_path):
    # ASYNC003 is per-file and unscoped: a dropped task handle is a bug
    # wherever asyncio runs.
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import asyncio\n\nasync def f():\n"
        "    asyncio.create_task(asyncio.sleep(0))\n"
    )
    result = run_lint(paths=[mod], root=tmp_path, cache_path=None)
    assert [f.rule for f in result.findings] == ["ASYNC003"]


def test_async_ambiguous_helper_name_is_skipped(tmp_path):
    # A bare name defined both sync-blocking and async in the package
    # is ambiguous: the checker must stay silent (documented
    # false-negative edge) rather than guess.
    (tmp_path / "serve").mkdir()
    (tmp_path / "serve" / "a.py").write_text(
        "def flush(p):\n    p.write_text('x')\n"
    )
    (tmp_path / "serve" / "b.py").write_text(
        "async def flush(p):\n    return None\n"
    )
    (tmp_path / "serve" / "c.py").write_text(
        "async def h(p):\n    flush(p)\n"
    )
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert not [f for f in result.findings if f.rule == "ASYNC001"]


# ----------------------------------------------------------------------
# Fork-safety checker
# ----------------------------------------------------------------------

def test_fork_safety_catches_planted_violations():
    result = _lint([FORK_FILE], cache_path=None)
    assert _rules(result) == Counter({"FORK001": 4, "FORK002": 1})


def test_fork_safety_guarded_worker_is_clean():
    result = _lint([FORK_FILE], cache_path=None)
    source = FORK_FILE.read_text().splitlines()
    for f in result.findings:
        assert "clean" not in source[f.line - 1], (
            f"{f.rule} fired on a line documented as clean"
        )


def test_fork_safety_picklable_args_pass(tmp_path):
    # Plain config values and pipe connections are the supported
    # currency across the fork boundary.
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import multiprocessing\n\n"
        "def worker(conn, cfg):\n    conn.send(('ready', cfg))\n\n"
        "def spawn(cfg):\n"
        "    parent, child = multiprocessing.Pipe()\n"
        "    return multiprocessing.Process(\n"
        "        target=worker, args=(child, cfg)\n"
        "    )\n"
    )
    result = run_lint(paths=[mod], root=tmp_path, cache_path=None)
    assert not [f for f in result.findings if f.rule.startswith("FORK")]


# ----------------------------------------------------------------------
# Message-protocol checker
# ----------------------------------------------------------------------

def test_message_protocol_catches_planted_violations():
    result = _lint([MSG_FILE], cache_path=None)
    assert _rules(result) == Counter({"MSG001": 4, "MSG002": 1})
    messages = " ".join(f.message for f in result.findings)
    for token in ("'params'", "'deadline'", "'render'", "'halt'", "'id'"):
        assert token in messages, token


def test_message_protocol_send_site_covers_cross_file_recv(tmp_path):
    # The pass is cross-file: a key sent in one serve/ module satisfies
    # a read in another.
    (tmp_path / "serve").mkdir()
    (tmp_path / "serve" / "sender.py").write_text(
        "def send(sock, send_message):\n"
        '    send_message(sock, {"id": 1, "kind": "simulate", "params": {}})\n'
    )
    (tmp_path / "serve" / "receiver.py").write_text(
        "def handle(msg):\n"
        '    if msg.get("kind") == "simulate":\n'
        '        return msg.get("params")\n'
        "    return None\n"
    )
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert not [f for f in result.findings if f.rule.startswith("MSG")]


def test_message_protocol_required_fields_constant_matches_wire():
    # The production protocol module actually declares the contract the
    # fixture mirrors.
    from repro.serve.protocol import REQUIRED_FIELDS

    assert REQUIRED_FIELDS == {
        "request": ("id", "kind"),
        "response": ("id", "ok"),
    }


# ----------------------------------------------------------------------
# Counter-parity checker
# ----------------------------------------------------------------------

def test_counter_parity_catches_planted_violations():
    result = _lint([CTR_FILE], cache_path=None)
    assert _rules(result) == Counter({"CTR001": 2})
    messages = " ".join(f.message for f in result.findings)
    assert "'ghost'" in messages and "'untracked'" in messages


def test_counter_parity_asdict_flushes_whole_class(tmp_path):
    # asdict(self) in any method exports every declared field, so a
    # fully-updated bundle is clean.
    (tmp_path / "serve").mkdir()
    (tmp_path / "serve" / "mod.py").write_text(
        "from dataclasses import asdict, dataclass\n\n"
        "@dataclass\nclass PairCounters:\n"
        "    hits: int = 0\n"
        "    def as_dict(self):\n        return asdict(self)\n\n"
        "class D:\n"
        "    def __init__(self):\n        self.counters = PairCounters()\n"
        "    def on_hit(self):\n        self.counters.hits += 1\n"
    )
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert not [f for f in result.findings if f.rule == "CTR001"]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

def test_pragmas_suppress_every_planted_violation():
    result = _lint([SUPPRESSED_FILE], cache_path=None)
    assert not result.findings


def test_pragma_parsing_trailing_and_standalone():
    pf = ParsedFile(
        Path("x.py"), "x.py",
        "a = 1  # lint: disable=DET001\n"
        "# lint: disable=DET002,DET003\n"
        "b = 2\n"
        "# lint: disable-file=HOT001\n",
    )
    assert pf.is_suppressed(1, "DET001")
    assert pf.is_suppressed(3, "DET002") and pf.is_suppressed(3, "DET003")
    assert not pf.is_suppressed(2, "DET002")
    assert pf.is_suppressed(99, "HOT001")  # file-wide, any line


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    first = _lint([DET_FILE], cache_path=None)
    assert first.findings and not first.baselined
    baseline = tmp_path / "lint-baseline.json"
    write_baseline(baseline, first.findings)
    second = _lint([DET_FILE], baseline_path=baseline, cache_path=None)
    assert not second.new
    assert len(second.baselined) == len(first.findings)
    assert not second.ok
    assert second.ok_against_baseline


def test_baseline_counts_cap_occurrences(tmp_path):
    # Two identical violations share one baseline key with count 2;
    # halving the budget makes exactly one occurrence new again.
    src = tmp_path / "mod.py"
    src.write_text(
        "import glob\n"
        "a = glob.glob('*')\n"
        "b = glob.glob('*')\n"
    )
    first = run_lint(paths=[src], root=tmp_path, cache_path=None)
    assert len(first.findings) == 2
    baseline = tmp_path / "lint-baseline.json"
    write_baseline(baseline, first.findings)
    data = json.loads(baseline.read_text())
    (key,) = data["entries"]
    assert data["entries"][key] == 2
    data["entries"][key] = 1
    baseline.write_text(json.dumps(data))
    second = run_lint(
        paths=[src], root=tmp_path, baseline_path=baseline, cache_path=None
    )
    assert len(second.new) == 1 and len(second.baselined) == 1
    assert second.new[0].baseline_key == key


def test_corrupt_or_missing_baseline_is_empty(tmp_path):
    assert not load_baseline(None)
    assert not load_baseline(tmp_path / "absent.json")
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    assert not load_baseline(corrupt)


def test_load_baseline_strict_raises(tmp_path):
    from repro.devtools.lint.baseline import BaselineError

    with pytest.raises(BaselineError, match="unreadable"):
        load_baseline(tmp_path / "absent.json", strict=True)
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    with pytest.raises(BaselineError, match="unreadable"):
        load_baseline(corrupt, strict=True)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"version": 99, "entries": {}}')
    with pytest.raises(BaselineError, match="unsupported version"):
        load_baseline(wrong, strict=True)


def test_new_rules_interact_with_baseline(tmp_path):
    # Concurrency-contract findings baseline exactly like the PR 5
    # rules (line-number-free keys, count-capped).
    first = _lint([ASYNC_FILE], cache_path=None)
    assert len(first.findings) == 7
    baseline = tmp_path / "lint-baseline.json"
    write_baseline(baseline, first.findings)
    second = _lint([ASYNC_FILE], baseline_path=baseline, cache_path=None)
    assert not second.new
    assert len(second.baselined) == 7
    assert second.ok_against_baseline and not second.ok


# ----------------------------------------------------------------------
# Parse cache
# ----------------------------------------------------------------------

def test_parse_cache_hits_and_identical_findings(tmp_path):
    cache = tmp_path / "cache.json"
    first = _lint([DET_FILE, PROC_FILE], cache_path=cache)
    assert first.cache_hits == 0
    assert cache.is_file()
    second = _lint([DET_FILE, PROC_FILE], cache_path=cache)
    assert second.cache_hits == 2
    assert [f.as_dict() for f in second.findings] == [
        f.as_dict() for f in first.findings
    ]


def test_parse_cache_invalidated_by_edit(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("import glob\nx = glob.glob('*')\n")
    cache = tmp_path / "cache.json"
    run_lint(paths=[src], root=tmp_path, cache_path=cache)
    src.write_text("import glob\nx = sorted(glob.glob('*'))\n")
    result = run_lint(paths=[src], root=tmp_path, cache_path=cache)
    assert result.cache_hits == 0
    assert not result.findings


def test_project_cache_hits_and_dependency_invalidation(tmp_path):
    """Satellite contract: project-checker cache entries are keyed on
    the content hashes of *all* contributing files — editing a helper
    the finding isn't even located in invalidates the entry."""
    (tmp_path / "serve").mkdir()
    helper = tmp_path / "serve" / "helpers.py"
    helper.write_text("def flush(path):\n    path.write_text('x')\n")
    daemon = tmp_path / "serve" / "daemon.py"
    daemon.write_text("async def handle(path):\n    flush(path)\n")
    cache = tmp_path / "cache.json"

    first = run_lint(paths=[tmp_path], root=tmp_path, cache_path=cache)
    assert [f.rule for f in first.findings] == ["ASYNC001"]
    assert first.findings[0].path == "serve/daemon.py"
    assert first.project_cache_hits == 0

    second = run_lint(paths=[tmp_path], root=tmp_path, cache_path=cache)
    assert second.cache_hits == 2
    assert second.project_cache_hits > 0
    assert [f.as_dict() for f in second.findings] == [
        f.as_dict() for f in first.findings
    ]

    # De-fang the helper: daemon.py is untouched, yet the cross-file
    # finding must disappear (a per-file-keyed cache would serve it
    # stale from daemon.py's unchanged entry).
    helper.write_text("def flush(path):\n    return None\n")
    third = run_lint(paths=[tmp_path], root=tmp_path, cache_path=cache)
    assert third.project_cache_hits == 0
    assert not third.findings


def test_project_cache_persisted_shape(tmp_path):
    (tmp_path / "serve").mkdir()
    (tmp_path / "serve" / "mod.py").write_text("x = 1\n")
    cache = tmp_path / "cache.json"
    run_lint(paths=[tmp_path], root=tmp_path, cache_path=cache)
    data = json.loads(cache.read_text())
    assert set(data) == {"version", "files", "project"}
    assert "async-safety" in data["project"]
    for entry in data["project"].values():
        assert set(entry) == {"sha", "findings"}


# ----------------------------------------------------------------------
# Runner / output
# ----------------------------------------------------------------------

def test_findings_sorted_and_output_deterministic():
    a = _lint([DET_FILE, PROC_FILE, HOT_FILE], cache_path=None)
    b = _lint([DET_FILE, PROC_FILE, HOT_FILE], cache_path=None)
    keys = [f.sort_key for f in a.findings]
    assert keys == sorted(keys)
    assert format_human(a) == format_human(b)


def test_syntax_error_reported_not_fatal(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    result = run_lint(paths=[bad], root=tmp_path, cache_path=None)
    assert result.errors and "syntax error" in result.errors[0]


def test_unknown_checker_name_raises():
    with pytest.raises(ValueError, match="unknown checkers"):
        _lint([DET_FILE], cache_path=None, checker_names=["nope"])


def test_checker_selection_limits_rules():
    result = _lint(
        [DET_FILE, PROC_FILE], cache_path=None,
        checker_names=["process-safety"],
    )
    assert {f.rule for f in result.findings} == {
        "PROC001", "PROC002", "PROC003"
    }


def test_rules_filter_family_prefix_and_exact_id():
    result = _lint([DET_FILE, ASYNC_FILE], cache_path=None, rules=["ASYNC"])
    assert set(_rules(result)) == {"ASYNC001", "ASYNC002", "ASYNC003"}
    result = _lint(
        [DET_FILE, ASYNC_FILE], cache_path=None, rules=["ASYNC003", "DET"]
    )
    rules = set(_rules(result))
    assert "ASYNC003" in rules and "DET001" in rules
    assert "ASYNC001" not in rules and "ASYNC002" not in rules


def test_rules_filter_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        _lint([DET_FILE], cache_path=None, rules=["NOPE"])
    with pytest.raises(ValueError, match="unknown rule"):
        # A prefix matching nothing is just as much of a typo.
        _lint([DET_FILE], cache_path=None, rules=["ASYNC", "MSG9"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    args = [str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache"]
    assert lint_main(args) == 1
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main(
        [str(clean), "--root", str(tmp_path), "--no-parse-cache"]
    ) == 0
    capsys.readouterr()


def test_cli_error_on_new_with_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    first = _lint([DET_FILE], cache_path=None)
    write_baseline(baseline, first.findings)
    args = [
        str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--baseline", str(baseline),
    ]
    assert lint_main(args) == 1  # without --error-on-new: findings fail
    assert lint_main(args + ["--error-on-new"]) == 0
    capsys.readouterr()


def test_cli_json_output_shape(capsys):
    rc = lint_main([
        str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--json",
    ])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "schema", "version", "files_checked", "cache_hits",
        "project_cache_hits", "errors", "counts", "new", "baselined",
    }
    assert payload["schema"] == 1  # CI parses against this
    assert payload["files_checked"] == 1
    assert payload["counts"]["DET001"] == 1
    finding = payload["new"][0]
    assert set(finding) == {
        "path", "line", "col", "rule", "message", "checker"
    }
    assert finding["path"] == "sim/det_violations.py"


def test_cli_rules_filter(capsys):
    rc = lint_main([
        str(ASYNC_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--rules", "ASYNC003",
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "ASYNC003" in out and "ASYNC001" not in out


def test_cli_unknown_rule_exits_2(capsys):
    rc = lint_main([
        str(ASYNC_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--rules", "BOGUS",
    ])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err and "BOGUS" in err


def test_cli_unreadable_baseline_exits_2(tmp_path, capsys):
    base_args = [
        str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
    ]
    rc = lint_main(base_args + ["--baseline", str(tmp_path / "absent.json")])
    assert rc == 2
    assert "baseline" in capsys.readouterr().err
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    rc = lint_main(base_args + ["--baseline", str(corrupt)])
    assert rc == 2
    assert "baseline" in capsys.readouterr().err
    # Auto-discovered (non-explicit) baselines stay lenient: findings
    # exit 1, never a usage error.
    assert lint_main(base_args) == 1
    capsys.readouterr()


def test_cli_write_baseline(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    rc = lint_main([
        str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--write-baseline", "--baseline", str(baseline),
    ])
    assert rc == 0
    data = json.loads(baseline.read_text())
    assert data["version"] == 1 and data["entries"]
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET001", "PROC001", "HOT001", "ORA001"):
        assert rule in out


def test_repro_cli_lint_subcommand(capsys):
    from repro._cli import main as repro_main

    rc = repro_main([
        "lint", str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
    ])
    assert rc == 1
    assert "DET001" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The repository's own acceptance contract
# ----------------------------------------------------------------------

def test_repository_tree_is_lint_clean():
    """ISSUE acceptance: ``repro lint`` reports zero non-baselined
    findings over ``src/repro`` (with the repo's own tests vouching
    for oracle parity), and the concurrency-contract families are
    registered and clean with zero baseline entries."""
    from repro.devtools.lint.core import all_rules

    registered = set(all_rules())
    for rule in (
        "ASYNC001", "ASYNC002", "ASYNC003", "FORK001", "FORK002",
        "MSG001", "MSG002", "CTR001",
    ):
        assert rule in registered, f"{rule} not registered"
    result = run_lint(
        paths=[REPO_ROOT / "src" / "repro"],
        root=REPO_ROOT,
        tests_dir=REPO_ROOT / "tests",
        cache_path=None,
    )
    assert not result.errors
    assert not result.new, format_human(result)
    # The concurrency rules must hold outright — never via baseline.
    new_families = ("ASYNC", "FORK", "MSG", "CTR")
    assert not [
        f for f in result.findings if f.rule.startswith(new_families)
    ], format_human(result)


def test_src_pragmas_carry_reason_comments():
    """Satellite contract: every suppression pragma in src/repro carries
    a human reason — comment text before the pragma marker on the same
    line, or an explanatory (non-pragma) comment on the line above.
    The linter's own package is exempt: its docstrings document the
    pragma syntax itself."""
    offenders = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        if "devtools/lint" in path.as_posix():
            continue
        lines = path.read_text().splitlines()
        for idx, line in enumerate(lines):
            match = re.search(r"#\s*lint:\s*disable", line)
            if match is None:
                continue
            before = line[: match.start()]
            inline = "#" in before and before.split("#", 1)[1].strip()
            prev = lines[idx - 1].strip() if idx else ""
            above = prev.startswith("#") and "lint:" not in prev
            if not (inline or above):
                offenders.append(f"{path.name}:{idx + 1}: {line.strip()}")
    assert not offenders, offenders
