"""Tests for ``repro lint``: the AST checker framework, the four
built-in checkers (against planted-violation fixtures under
``tests/fixtures/lint/``), pragma suppression, the baseline file, the
parse cache, JSON output shape, and the CLI wiring."""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.devtools.lint import run_lint
from repro.devtools.lint.baseline import load_baseline, write_baseline
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.core import ParsedFile
from repro.devtools.lint.report import format_human

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parent.parent

DET_FILE = FIXTURES / "sim" / "det_violations.py"
SUPPRESSED_FILE = FIXTURES / "sim" / "det_suppressed.py"
PROC_FILE = FIXTURES / "proc_violations.py"
HOT_FILE = FIXTURES / "hot_violations.py"
REGISTRY_FILE = FIXTURES / "sim" / "registry_fixture.py"


def _lint(paths, tests_dir=None, **kwargs):
    return run_lint(
        paths=[Path(p) for p in paths],
        root=FIXTURES,
        tests_dir=tests_dir,
        **kwargs,
    )


def _rules(result):
    return Counter(f.rule for f in result.findings)


# ----------------------------------------------------------------------
# Determinism checker
# ----------------------------------------------------------------------

def test_determinism_catches_planted_violations():
    result = _lint([DET_FILE], cache_path=None)
    assert _rules(result) == Counter(
        {"DET001": 1, "DET002": 2, "DET003": 1, "DET004": 2, "DET005": 2}
    )


def test_determinism_seeded_and_sorted_forms_pass():
    source = DET_FILE.read_text()
    lines = {
        f.line: f.rule
        for f in _lint([DET_FILE], cache_path=None).findings
    }
    for lineno, rule in lines.items():
        assert "clean" not in source.splitlines()[lineno - 1], (
            f"{rule} fired on a line documented as clean"
        )


def test_determinism_subsystem_scoping(tmp_path):
    # The same wall-clock read outside sim/core/cluster/trace/serve is
    # legal.
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    (tmp_path / "analysis").mkdir()
    outside = tmp_path / "analysis" / "mod.py"
    outside.write_text(src)
    (tmp_path / "core").mkdir()
    inside = tmp_path / "core" / "mod.py"
    inside.write_text(src)
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert [(f.path, f.rule) for f in result.findings] == [
        ("core/mod.py", "DET001")
    ]


def test_determinism_scope_includes_serve(tmp_path):
    """The serve daemon is inside the deterministic scope (its payloads
    carry a bit-identity oracle); only pragma'd lines are exempt."""
    from repro.devtools.lint.checkers.determinism import DETERMINISTIC_DIRS

    assert "serve" in DETERMINISTIC_DIRS
    (tmp_path / "serve").mkdir()
    flagged = tmp_path / "serve" / "mod.py"
    flagged.write_text("import time\n\ndef f():\n    return time.monotonic()\n")
    pragmad = tmp_path / "serve" / "ok.py"
    pragmad.write_text(
        "import time\n\ndef f():\n"
        "    return time.monotonic()  # lint: disable=DET001\n"
    )
    result = run_lint(paths=[tmp_path], root=tmp_path, cache_path=None)
    assert [(f.path, f.rule) for f in result.findings] == [
        ("serve/mod.py", "DET001")
    ]


def test_repo_serve_wall_clock_is_pragmad_not_baselined():
    """Satellite contract: every wall-clock read in src/repro/serve is
    exempted by an inline pragma, never via the baseline file."""
    serve_dir = REPO_ROOT / "src" / "repro" / "serve"
    offenders = []
    for path in sorted(serve_dir.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "time.monotonic" in line and "disable=DET001" not in line:
                offenders.append(f"{path.name}:{lineno}")
    assert not offenders, offenders


# ----------------------------------------------------------------------
# Process-safety checker
# ----------------------------------------------------------------------

def test_process_safety_catches_planted_violations():
    result = _lint([PROC_FILE], cache_path=None)
    assert _rules(result) == Counter(
        {"PROC001": 3, "PROC002": 4, "PROC003": 3}
    )


def test_process_safety_module_level_names_pass():
    result = _lint([PROC_FILE], cache_path=None)
    source_lines = PROC_FILE.read_text().splitlines()
    for f in result.findings:
        assert "clean" not in source_lines[f.line - 1]


# ----------------------------------------------------------------------
# Hot-loop checker
# ----------------------------------------------------------------------

def test_hot_loop_catches_planted_violations():
    result = _lint([HOT_FILE], cache_path=None)
    assert _rules(result) == Counter(
        {"HOT001": 3, "HOT002": 3, "HOT003": 1}
    )


def test_hot_loop_only_fires_inside_marked_regions():
    # cold_loop has the identical body but no ``# lint: hot`` mark.
    result = _lint([HOT_FILE], cache_path=None)
    source = HOT_FILE.read_text().splitlines()
    cold_start = next(
        i for i, line in enumerate(source, 1) if "def cold_loop" in line
    )
    cold_end = next(
        i for i, line in enumerate(source, 1) if "def hot_function" in line
    )
    assert not [
        f for f in result.findings if cold_start <= f.line < cold_end
    ]


def test_hot_pragma_suppression():
    # hot_justified's sorted() carries a trailing disable pragma.
    result = _lint([HOT_FILE], cache_path=None)
    source = HOT_FILE.read_text().splitlines()
    justified = next(
        i for i, line in enumerate(source, 1) if "disable=HOT002" in line
    )
    assert not [f for f in result.findings if f.line == justified]


# ----------------------------------------------------------------------
# Oracle-parity checker
# ----------------------------------------------------------------------

def test_oracle_parity_full_coverage_is_clean():
    result = _lint(
        [REGISTRY_FILE], tests_dir=FIXTURES / "fake_tests_full",
        cache_path=None,
    )
    assert not result.findings


def test_oracle_parity_flags_uncovered_registrations():
    result = _lint(
        [REGISTRY_FILE], tests_dir=FIXTURES / "fake_tests_partial",
        cache_path=None,
    )
    assert _rules(result) == Counter({"ORA001": 2})
    flagged = {f.message.split("'")[1] for f in result.findings}
    assert flagged == {"fixture-reference", "fixture-oracle"}


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

def test_pragmas_suppress_every_planted_violation():
    result = _lint([SUPPRESSED_FILE], cache_path=None)
    assert not result.findings


def test_pragma_parsing_trailing_and_standalone():
    pf = ParsedFile(
        Path("x.py"), "x.py",
        "a = 1  # lint: disable=DET001\n"
        "# lint: disable=DET002,DET003\n"
        "b = 2\n"
        "# lint: disable-file=HOT001\n",
    )
    assert pf.is_suppressed(1, "DET001")
    assert pf.is_suppressed(3, "DET002") and pf.is_suppressed(3, "DET003")
    assert not pf.is_suppressed(2, "DET002")
    assert pf.is_suppressed(99, "HOT001")  # file-wide, any line


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    first = _lint([DET_FILE], cache_path=None)
    assert first.findings and not first.baselined
    baseline = tmp_path / "lint-baseline.json"
    write_baseline(baseline, first.findings)
    second = _lint([DET_FILE], baseline_path=baseline, cache_path=None)
    assert not second.new
    assert len(second.baselined) == len(first.findings)
    assert not second.ok
    assert second.ok_against_baseline


def test_baseline_counts_cap_occurrences(tmp_path):
    # Two identical violations share one baseline key with count 2;
    # halving the budget makes exactly one occurrence new again.
    src = tmp_path / "mod.py"
    src.write_text(
        "import glob\n"
        "a = glob.glob('*')\n"
        "b = glob.glob('*')\n"
    )
    first = run_lint(paths=[src], root=tmp_path, cache_path=None)
    assert len(first.findings) == 2
    baseline = tmp_path / "lint-baseline.json"
    write_baseline(baseline, first.findings)
    data = json.loads(baseline.read_text())
    (key,) = data["entries"]
    assert data["entries"][key] == 2
    data["entries"][key] = 1
    baseline.write_text(json.dumps(data))
    second = run_lint(
        paths=[src], root=tmp_path, baseline_path=baseline, cache_path=None
    )
    assert len(second.new) == 1 and len(second.baselined) == 1
    assert second.new[0].baseline_key == key


def test_corrupt_or_missing_baseline_is_empty(tmp_path):
    assert not load_baseline(None)
    assert not load_baseline(tmp_path / "absent.json")
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    assert not load_baseline(corrupt)


# ----------------------------------------------------------------------
# Parse cache
# ----------------------------------------------------------------------

def test_parse_cache_hits_and_identical_findings(tmp_path):
    cache = tmp_path / "cache.json"
    first = _lint([DET_FILE, PROC_FILE], cache_path=cache)
    assert first.cache_hits == 0
    assert cache.is_file()
    second = _lint([DET_FILE, PROC_FILE], cache_path=cache)
    assert second.cache_hits == 2
    assert [f.as_dict() for f in second.findings] == [
        f.as_dict() for f in first.findings
    ]


def test_parse_cache_invalidated_by_edit(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("import glob\nx = glob.glob('*')\n")
    cache = tmp_path / "cache.json"
    run_lint(paths=[src], root=tmp_path, cache_path=cache)
    src.write_text("import glob\nx = sorted(glob.glob('*'))\n")
    result = run_lint(paths=[src], root=tmp_path, cache_path=cache)
    assert result.cache_hits == 0
    assert not result.findings


# ----------------------------------------------------------------------
# Runner / output
# ----------------------------------------------------------------------

def test_findings_sorted_and_output_deterministic():
    a = _lint([DET_FILE, PROC_FILE, HOT_FILE], cache_path=None)
    b = _lint([DET_FILE, PROC_FILE, HOT_FILE], cache_path=None)
    keys = [f.sort_key for f in a.findings]
    assert keys == sorted(keys)
    assert format_human(a) == format_human(b)


def test_syntax_error_reported_not_fatal(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    result = run_lint(paths=[bad], root=tmp_path, cache_path=None)
    assert result.errors and "syntax error" in result.errors[0]


def test_unknown_checker_name_raises():
    with pytest.raises(ValueError, match="unknown checkers"):
        _lint([DET_FILE], cache_path=None, checker_names=["nope"])


def test_checker_selection_limits_rules():
    result = _lint(
        [DET_FILE, PROC_FILE], cache_path=None,
        checker_names=["process-safety"],
    )
    assert {f.rule for f in result.findings} == {
        "PROC001", "PROC002", "PROC003"
    }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    args = [str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache"]
    assert lint_main(args) == 1
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main(
        [str(clean), "--root", str(tmp_path), "--no-parse-cache"]
    ) == 0
    capsys.readouterr()


def test_cli_error_on_new_with_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    first = _lint([DET_FILE], cache_path=None)
    write_baseline(baseline, first.findings)
    args = [
        str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--baseline", str(baseline),
    ]
    assert lint_main(args) == 1  # without --error-on-new: findings fail
    assert lint_main(args + ["--error-on-new"]) == 0
    capsys.readouterr()


def test_cli_json_output_shape(capsys):
    rc = lint_main([
        str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--json",
    ])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "version", "files_checked", "cache_hits", "errors", "counts",
        "new", "baselined",
    }
    assert payload["files_checked"] == 1
    assert payload["counts"]["DET001"] == 1
    finding = payload["new"][0]
    assert set(finding) == {
        "path", "line", "col", "rule", "message", "checker"
    }
    assert finding["path"] == "sim/det_violations.py"


def test_cli_write_baseline(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    rc = lint_main([
        str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
        "--write-baseline", "--baseline", str(baseline),
    ])
    assert rc == 0
    data = json.loads(baseline.read_text())
    assert data["version"] == 1 and data["entries"]
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET001", "PROC001", "HOT001", "ORA001"):
        assert rule in out


def test_repro_cli_lint_subcommand(capsys):
    from repro._cli import main as repro_main

    rc = repro_main([
        "lint", str(DET_FILE), "--root", str(FIXTURES), "--no-parse-cache",
    ])
    assert rc == 1
    assert "DET001" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The repository's own acceptance contract
# ----------------------------------------------------------------------

def test_repository_tree_is_lint_clean():
    """ISSUE acceptance: ``repro lint`` reports zero non-baselined
    findings over ``src/repro`` (with the repo's own tests vouching
    for oracle parity)."""
    result = run_lint(
        paths=[REPO_ROOT / "src" / "repro"],
        root=REPO_ROOT,
        tests_dir=REPO_ROOT / "tests",
        cache_path=None,
    )
    assert not result.errors
    assert not result.new, format_human(result)
