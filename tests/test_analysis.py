"""Tests for the analysis layer: classification, reports, drivers."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    FIG5_CONFIGS,
    TABLE1_GPU_MS,
    run_fig5_model,
    run_table1,
)
from repro.analysis.kernel_types import (
    block_size_ratios,
    classify_kernel,
    launch_is_regular,
)
from repro.analysis.report import render_series, render_table
from repro.profiler import profile_kernel
from repro.workloads import get_workload

from tests.conftest import make_two_phase_kernel, make_uniform_kernel


class TestKernelTypes:
    def test_uniform_kernel_regular(self):
        profile = profile_kernel(make_uniform_kernel())
        assert classify_kernel(profile) == "regular"
        assert all(launch_is_regular(p) for p in profile.launches)

    def test_lognormal_kernel_irregular(self):
        kernel = make_uniform_kernel(size_cov=0.5, name="scattered")
        profile = profile_kernel(kernel)
        assert classify_kernel(profile) == "irregular"

    def test_quantized_levels_regular(self):
        """Fig. 8(a): few flat size levels count as regular even with a
        high CoV."""
        two_phase = make_two_phase_kernel(blocks_per_segment=400)
        profile = profile_kernel(two_phase)
        # two distinct-but-flat block sizes -> quantized -> regular
        assert all(launch_is_regular(p) for p in profile.launches)

    def test_block_size_ratios_concatenated(self):
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=50)
        profile = profile_kernel(kernel)
        ratios = block_size_ratios(profile)
        assert len(ratios) == 100
        assert ratios.mean() == pytest.approx(1.0)

    @pytest.mark.parametrize("name,expected", [
        ("hotspot", "regular"), ("bfs", "irregular"), ("mst", "irregular"),
    ])
    def test_benchmark_classification(self, name, expected):
        profile = profile_kernel(get_workload(name, scale=0.05))
        assert classify_kernel(profile) == expected


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [(1, 2.5), (30, 4.0)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_render_series_subsamples(self):
        out = render_series("s", list(range(100)), [float(i) for i in range(100)],
                            max_points=5)
        assert out.startswith("s:")
        assert out.count(":") == 6  # name + 5 points

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("s", [1, 2], [1.0])


class TestExperimentDrivers:
    def test_fig5_model_runs_all_configs(self):
        results = run_fig5_model(num_samples=200)
        assert len(results) == len(FIG5_CONFIGS)
        for var in results:
            assert 0 < var.mean_ipc <= 1

    def test_table1_rows(self):
        rows = run_table1(sim_insts_per_sec=1e5)
        assert len(rows) == len(TABLE1_GPU_MS)
        assert rows[0].benchmark == "NB"
        # slowdown = GPU rate / sim rate
        assert rows[0].slowdown == pytest.approx(5.6e9 / 1e5)
        # NB at 28.557 s of GPU time: weeks of simulation
        assert "weeks" in rows[0].human_sim_time

    def test_table1_time_formatting(self):
        rows = run_table1(sim_insts_per_sec=5.6e9)  # no slowdown
        assert rows[-1].projected_sim_seconds == pytest.approx(0.881)
