"""Tests for the LRU cache model."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.caches import DictLRUCache, LRUCache


@pytest.fixture(params=[LRUCache, DictLRUCache], ids=["ordered", "dict"])
def Cache(request):
    """Both LRU implementations must satisfy the same contract; the
    plain-dict variant is the measured-and-rejected alternative kept as
    documentation (see caches.py docstring and DESIGN.md §8)."""
    return request.param


class TestLRUCache:
    def test_first_access_misses_second_hits(self, Cache):
        c = Cache(1024, 128)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(64)  # same 128-byte line
        assert c.hits == 2 and c.misses == 1

    def test_distinct_lines(self, Cache):
        c = Cache(1024, 128)
        c.access(0)
        assert not c.access(128)

    def test_capacity_eviction_lru_order(self, Cache):
        c = Cache(4 * 128, 128)  # 4 lines
        for i in range(4):
            c.access(i * 128)
        c.access(0)  # touch line 0 -> MRU
        c.access(4 * 128)  # evicts line 1 (LRU)
        assert c.access(0)  # still resident
        assert not c.access(1 * 128)  # evicted

    def test_occupancy_bounded(self, Cache):
        c = Cache(8 * 128, 128)
        for i in range(100):
            c.access(i * 128)
        assert c.occupancy == 8

    def test_contains_does_not_mutate(self, Cache):
        c = Cache(1024, 128)
        assert not c.contains(0)
        assert c.misses == 0
        c.access(0)
        assert c.contains(0)
        assert c.hits == 0 and c.misses == 1

    def test_reset(self, Cache):
        c = Cache(1024, 128)
        c.access(0)
        c.reset()
        assert c.occupancy == 0
        assert c.hits == 0 and c.misses == 0
        assert not c.access(0)

    def test_reset_keep_stats(self, Cache):
        c = Cache(1024, 128)
        c.access(0)
        c.access(0)
        c.reset(keep_stats=True)
        assert c.hits == 1 and c.misses == 1
        assert not c.access(0)  # line gone

    def test_hit_rate(self, Cache):
        c = Cache(1024, 128)
        assert c.hit_rate == 0.0
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(0.5)

    def test_rejects_bad_line_size(self, Cache):
        with pytest.raises(ValueError):
            Cache(1024, 100)
        with pytest.raises(ValueError):
            Cache(64, 128)

    @settings(
        max_examples=25, deadline=None,
        # ``Cache`` is a class, not mutable state: safe across examples.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300),
        lines=st.integers(1, 16),
    )
    def test_occupancy_never_exceeds_capacity(self, Cache, addrs, lines):
        c = Cache(lines * 128, 128)
        for a in addrs:
            c.access(a)
        assert c.occupancy <= lines
        assert c.hits + c.misses == len(addrs)

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
    def test_infinite_capacity_only_compulsory_misses(self, Cache, addrs):
        c = Cache(1 << 22, 128)  # larger than the address space used
        for a in addrs:
            c.access(a)
        distinct_lines = len({a >> 7 for a in addrs})
        assert c.misses == distinct_lines
