"""Tests for the LRU cache model."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.caches import ArrayLRUCache, DictLRUCache, LRUCache


@pytest.fixture(
    params=[LRUCache, DictLRUCache, ArrayLRUCache],
    ids=["ordered", "dict", "array"],
)
def Cache(request):
    """All LRU implementations must satisfy the same contract: the
    plain-dict variant is the measured-and-rejected alternative kept as
    documentation (see caches.py docstring and DESIGN.md §8), and the
    ring-log array variant backs the vector front end (DESIGN.md §11)."""
    return request.param


class TestLRUCache:
    def test_first_access_misses_second_hits(self, Cache):
        c = Cache(1024, 128)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(64)  # same 128-byte line
        assert c.hits == 2 and c.misses == 1

    def test_distinct_lines(self, Cache):
        c = Cache(1024, 128)
        c.access(0)
        assert not c.access(128)

    def test_capacity_eviction_lru_order(self, Cache):
        c = Cache(4 * 128, 128)  # 4 lines
        for i in range(4):
            c.access(i * 128)
        c.access(0)  # touch line 0 -> MRU
        c.access(4 * 128)  # evicts line 1 (LRU)
        assert c.access(0)  # still resident
        assert not c.access(1 * 128)  # evicted

    def test_occupancy_bounded(self, Cache):
        c = Cache(8 * 128, 128)
        for i in range(100):
            c.access(i * 128)
        assert c.occupancy == 8

    def test_contains_does_not_mutate(self, Cache):
        c = Cache(1024, 128)
        assert not c.contains(0)
        assert c.misses == 0
        c.access(0)
        assert c.contains(0)
        assert c.hits == 0 and c.misses == 1

    def test_reset(self, Cache):
        c = Cache(1024, 128)
        c.access(0)
        c.reset()
        assert c.occupancy == 0
        assert c.hits == 0 and c.misses == 0
        assert not c.access(0)

    def test_reset_keep_stats(self, Cache):
        c = Cache(1024, 128)
        c.access(0)
        c.access(0)
        c.reset(keep_stats=True)
        assert c.hits == 1 and c.misses == 1
        assert not c.access(0)  # line gone

    def test_hit_rate(self, Cache):
        c = Cache(1024, 128)
        assert c.hit_rate == 0.0
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(0.5)

    def test_rejects_bad_line_size(self, Cache):
        with pytest.raises(ValueError):
            Cache(1024, 100)
        with pytest.raises(ValueError):
            Cache(64, 128)

    @settings(
        max_examples=25, deadline=None,
        # ``Cache`` is a class, not mutable state: safe across examples.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300),
        lines=st.integers(1, 16),
    )
    def test_occupancy_never_exceeds_capacity(self, Cache, addrs, lines):
        c = Cache(lines * 128, 128)
        for a in addrs:
            c.access(a)
        assert c.occupancy <= lines
        assert c.hits + c.misses == len(addrs)

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
    def test_infinite_capacity_only_compulsory_misses(self, Cache, addrs):
        c = Cache(1 << 22, 128)  # larger than the address space used
        for a in addrs:
            c.access(a)
        distinct_lines = len({a >> 7 for a in addrs})
        assert c.misses == distinct_lines


class TestArrayLRUCacheRing:
    """Ring-log specifics of :class:`ArrayLRUCache`: compaction under
    hit streaks, the vectorized membership probe, and eviction-order
    equivalence with the OrderedDict implementation."""

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=400))
    def test_bit_identical_to_ordered_on_random_streams(self, addrs):
        a = LRUCache(8 * 128, 128)
        b = ArrayLRUCache(8 * 128, 128)
        for addr in addrs:
            assert a.access(addr) == b.access(addr)
        assert a.lru_lines() == b.lru_lines()
        assert (a.hits, a.misses, a.occupancy) == (
            b.hits, b.misses, b.occupancy
        )

    def test_hit_streak_forces_compaction(self):
        # Hits append log entries without consuming them, so a long
        # enough streak must wrap the ring and compact; the observable
        # LRU state must be unchanged by compaction.
        a = LRUCache(2 * 128, 128)
        b = ArrayLRUCache(2 * 128, 128)
        for i in range(10 * b._ring_size):
            addr = (i % 2) * 128
            assert a.access(addr) == b.access(addr)
        assert b.compactions > 0
        assert a.lru_lines() == b.lru_lines()
        assert (a.hits, a.misses) == (b.hits, b.misses)

    def test_eviction_skips_stale_log_entries(self):
        c = ArrayLRUCache(2 * 128, 128)
        c.access(0)        # line 0 at log 0
        c.access(128)      # line 1 at log 1
        c.access(0)        # line 0 refreshed at log 2 (log 0 now stale)
        c.access(256)      # full: must evict line 1, not line 0
        assert c.contains(0)
        assert not c.contains(128)
        assert c.contains(256)
        assert c.lru_lines() == [0, 2]

    def test_probe_lines_matches_contains_and_does_not_mutate(self):
        import numpy as np

        c = ArrayLRUCache(4 * 128, 128)
        for addr in (0, 128, 384, 0, 640):
            c.access(addr)
        hits_before, misses_before = c.hits, c.misses
        compactions_before = c.compactions
        ht_before = list(c._ht)
        order_before = c.lru_lines()
        lines = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
        got = c.probe_lines(lines)
        want = [c.contains(line * 128) for line in lines.tolist()]
        assert got.tolist() == want
        assert (c.hits, c.misses) == (hits_before, misses_before)
        assert c.compactions == compactions_before
        assert c._ht == ht_before
        assert c.lru_lines() == order_before

    def test_reset_mutates_state_in_place(self):
        # The vector front end aliases ``_pos``/``_ht``; reset must
        # clear them in place, never rebind.
        c = ArrayLRUCache(4 * 128, 128)
        pos, ht = c._pos, c._ht
        for addr in range(0, 1024, 128):
            c.access(addr)
        c.reset()
        assert c._pos is pos and c._ht is ht
        assert not pos and ht == [0, 0]
        assert not c.access(0)  # miss again after reset

    def test_compact_mutates_index_in_place(self):
        c = ArrayLRUCache(2 * 128, 128)
        pos, ht = c._pos, c._ht
        c.access(0)
        c.access(128)
        c._compact()
        assert c._pos is pos and c._ht is ht
        assert c.lru_lines() == [0, 1]
