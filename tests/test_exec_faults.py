"""Chaos suite: the execution layer under deterministic fault injection.

The fault-tolerance contract (DESIGN.md §9): under every injected
failure mode — worker crash, task exception, hung task, broken pool,
corrupt cache entry — ``parallel_map`` and the sweep drivers built on it
produce results bit-identical to a clean serial run, and a sweep killed
mid-run resumes from its journal without recomputing completed kernels.

Fault plans are seeded scripts (``repro.exec.faults``) that fire at
exact ``(task index, attempt)`` coordinates, so every scenario here is
reproducible; nothing in this file depends on timing except through the
injected faults themselves.

The machine may report a single CPU, which would (correctly) degrade
every map to the serial path; tests that need the *pool* path patch
``cpu_count`` the way ``tests/test_exec_parallel.py`` does.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig, GPUConfig
from repro.core.pipeline import run_tbpoint
from repro.exec import (
    ExecutionConfig,
    InjectedFault,
    SweepJournal,
    crash_plan,
    hang_plan,
    parallel_map,
    raise_plan,
)
from repro.exec.faults import CORRUPT_CACHE, CRASH, RAISE, Fault, FaultPlan
from repro.workloads.base import LaunchSpec, Segment, build_kernel

from tests.test_exec_parallel import _fingerprint

GPU = GPUConfig(num_sms=2, warps_per_sm=8)

#: Retry budget used throughout: 2 extra pool attempts then serial.
RETRIES = 2


@pytest.fixture
def four_cpus(monkeypatch):
    """Force the pool path on single-CPU machines."""
    import repro.exec.engine as engine

    monkeypatch.setattr(engine.os, "cpu_count", lambda: 4)


def _cfg(**kwargs) -> ExecutionConfig:
    kwargs.setdefault("jobs", 4)
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("backoff", 0.0)  # chaos tests need no politeness
    kwargs.setdefault("retries", RETRIES)
    return ExecutionConfig(**kwargs)


def _square(x: int) -> int:
    return x * x


ITEMS = list(range(8))
WANT = [i * i for i in ITEMS]


# ----------------------------------------------------------------------
# FaultPlan as pure data (PR 9: plans cross a JSON file into a daemon)
# ----------------------------------------------------------------------
class TestFaultPlanJSON:
    PLAN = FaultPlan(
        faults=(
            Fault(CRASH, 0, 0),
            Fault(RAISE, 3, 1),
            Fault("hang", 2, 0, duration=1.5),
            Fault(CORRUPT_CACHE, 1, 2),
        ),
        seed=42,
        cache_dir="/tmp/somewhere",
    )

    def test_round_trips_through_json(self):
        import json

        data = json.loads(json.dumps(self.PLAN.as_dict()))
        assert FaultPlan.from_dict(data) == self.PLAN

    def test_parent_pid_preserved_verbatim(self):
        """The crash guard protects the plan's *builder*, not whoever
        deserialized it — a daemon loading a test's plan must keep the
        test's PID so CRASH faults still fire in the daemon's workers
        but never in the degraded in-parent path of the builder."""
        data = self.PLAN.as_dict()
        data["parent_pid"] = 12345
        assert FaultPlan.from_dict(data).parent_pid == 12345

    def test_fires_reports_exact_coordinates(self):
        assert self.PLAN.fires(0, 0) == (Fault(CRASH, 0, 0),)
        assert self.PLAN.fires(3, 1) == (Fault(RAISE, 3, 1),)
        assert self.PLAN.fires(0, 1) == ()
        assert self.PLAN.fires(9, 0) == ()

    def test_from_dict_fills_defaults(self):
        plan = FaultPlan.from_dict(
            {"faults": [{"kind": "raise", "index": 2}], "parent_pid": 7}
        )
        assert plan.faults == (Fault(RAISE, 2, 0),)
        assert plan.seed == 0
        assert plan.cache_dir is None


# ----------------------------------------------------------------------
# parallel_map under every fault mode
# ----------------------------------------------------------------------
class TestFaultModes:
    def test_worker_crash_recovers(self, four_cpus):
        """One worker dies (BrokenProcessPool): the pool is respawned,
        unfinished tasks requeued, results unchanged."""
        meta: dict = {}
        cfg = _cfg(fault_plan=crash_plan(3))
        assert parallel_map(_square, ITEMS, 4, meta, cfg) == WANT
        assert meta["path"] == "parallel"
        assert meta["pool_respawns"] >= 1
        assert meta["retries"] >= 1
        assert meta["serial_fallback"] == []

    def test_task_exception_retried(self, four_cpus):
        """A task failing twice succeeds on its third attempt."""
        meta: dict = {}
        cfg = _cfg(fault_plan=raise_plan((2, 0), (2, 1)))
        assert parallel_map(_square, ITEMS, 4, meta, cfg) == WANT
        assert meta["retries"] >= 2
        assert meta["pool_respawns"] == 0

    def test_hung_task_times_out_and_retries(self, four_cpus):
        """A stalled attempt trips the per-task timeout: the poisoned
        pool is abandoned, the task retried, results unchanged."""
        meta: dict = {}
        cfg = _cfg(task_timeout=0.5, fault_plan=hang_plan(5, duration=3.0))
        assert parallel_map(_square, ITEMS, 4, meta, cfg) == WANT
        assert meta["timed_out"] == [5]
        assert meta["pool_respawns"] >= 1

    def test_repeated_worker_killer_degrades_to_serial(self, four_cpus):
        """A task that kills its worker on every pool attempt runs once
        in-parent (where the crash fault, like a real worker OOM,
        cannot reach) and still produces its result."""
        plan = FaultPlan(
            faults=tuple(Fault(CRASH, 1, a) for a in range(1 + RETRIES))
        )
        meta: dict = {}
        assert parallel_map(_square, ITEMS, 4, meta, _cfg(fault_plan=plan)) == WANT
        # The killer degrades to serial; inflight neighbours charged for
        # the same pool breaks (the killer cannot be identified) may too.
        assert 1 in meta["serial_fallback"]
        assert meta["pool_respawns"] >= 1 + RETRIES

    def test_unpicklable_item_serial_fallback(self, four_cpus):
        """A stray unpicklable item costs one serial fallback, not the
        whole map (the probe checks only fn + the first item)."""
        items = [1, 2, 3, (lambda: 1), 5]  # noqa: E731
        meta: dict = {}
        out = parallel_map(str, items, 4, meta, _cfg())
        assert out[:3] == ["1", "2", "3"] and out[4] == "5"
        assert "lambda" in out[3]
        assert meta["path"] == "parallel"
        assert meta["serial_fallback"] == [3]
        assert meta["timed_out"] == []

    def test_exhausted_fault_propagates(self, four_cpus):
        """A task that raises on every attempt *including* the final
        serial one is a genuine failure: it propagates instead of
        hanging or fabricating a result."""
        plan = raise_plan(*[(0, a) for a in range(2 + RETRIES)])
        with pytest.raises(InjectedFault):
            parallel_map(_square, ITEMS, 4, {}, _cfg(fault_plan=plan))

    def test_completed_tasks_reported_before_fatal_failure(self, four_cpus):
        """on_result fires per completion, so work finished before a
        fatal failure is already checkpointed (what --resume recovers).
        The fatal task is the *last* index, so earlier tasks complete
        (and are reported) before it exhausts its attempts."""
        fatal = len(ITEMS) - 1
        plan = raise_plan(*[(fatal, a) for a in range(2 + RETRIES)])
        seen: dict[int, int] = {}
        with pytest.raises(InjectedFault):
            parallel_map(
                _square, ITEMS, 4, {}, _cfg(fault_plan=plan),
                on_result=lambda i, r: seen.__setitem__(i, r),
            )
        assert seen  # some neighbours completed and were reported
        assert all(seen[i] == i * i for i in seen)
        assert fatal not in seen

    def test_serial_path_honours_retries(self):
        """Without a pool (1 CPU, no patch) the same retry budget
        applies in-process — fault behaviour does not depend on whether
        a pool was available."""
        meta: dict = {}
        cfg = _cfg(jobs=1, fault_plan=raise_plan((2, 0)))
        assert parallel_map(_square, ITEMS, 1, meta, cfg) == WANT
        assert meta["path"] == "serial"
        assert meta["retries"] == 1

    def test_fault_free_plan_changes_nothing(self, four_cpus):
        meta: dict = {}
        assert parallel_map(_square, ITEMS, 4, meta, _cfg(fault_plan=FaultPlan())) == WANT
        assert meta["attempts"] == len(ITEMS)
        assert meta["retries"] == 0


# ----------------------------------------------------------------------
# Determinism through the pipeline: faulted parallel == clean serial
# ----------------------------------------------------------------------
def _diverse_kernel():
    """Four behaviourally distinct launches so inter-launch clustering
    keeps ≥4 representatives — enough for the pool path to engage."""
    specs = [
        LaunchSpec(
            segments=(
                Segment(count=blocks, insts_per_warp=insts, mem_ratio=mem),
            ),
            warps_per_block=2,
        )
        for blocks, insts, mem in (
            (8, 16, 0.05), (16, 32, 0.3), (12, 24, 0.1), (20, 48, 0.02)
        )
    ]
    return build_kernel("chaos", "test", "regular", specs, 5)


class TestPipelineDeterminismUnderFaults:
    def test_run_tbpoint_bit_identical_under_faults(self, four_cpus):
        kernel = _diverse_kernel()
        clean = run_tbpoint(
            kernel, GPU, exec_config=ExecutionConfig(jobs=1, use_cache=False)
        )
        plan = FaultPlan(
            faults=(
                Fault(CRASH, 1, 0),
                Fault(RAISE, 2, 0),
                Fault(RAISE, 2, 1),
            )
        )
        chaotic = run_tbpoint(kernel, GPU, exec_config=_cfg(fault_plan=plan))
        assert _fingerprint(chaotic) == _fingerprint(clean)
        if chaotic.exec_meta["path"] == "parallel":
            assert chaotic.exec_meta["retries"] >= 1


# ----------------------------------------------------------------------
# Sweep-level chaos: run_fig9_fig10 + journal + resume
# ----------------------------------------------------------------------
SWEEP_KERNELS = ("stream", "kmeans", "hotspot", "conv")
EXPERIMENT = ExperimentConfig(scale=0.0625)


def _sweep_fingerprint(summary):
    return [
        (
            c.kernel,
            c.full_ipc,
            c.tbpoint.overall_ipc,
            c.tbpoint.sample_size,
            c.simpoint.overall_ipc,
            c.random.overall_ipc,
            c.total_warp_insts,
        )
        for c in summary.comparisons
    ]


@pytest.mark.slow
class TestSweepChaos:
    @pytest.fixture(scope="class")
    def clean_sweep(self):
        from repro.analysis.experiments import run_fig9_fig10

        return run_fig9_fig10(
            SWEEP_KERNELS, EXPERIMENT,
            exec_config=ExecutionConfig(jobs=1, use_cache=False),
        )

    def test_sweep_bit_identical_under_mixed_faults(
        self, four_cpus, tmp_path, clean_sweep
    ):
        """Crash one kernel's worker, make another flaky, corrupt the
        profile cache mid-sweep: the summary must equal the clean one."""
        from repro.analysis.experiments import run_fig9_fig10

        cache_dir = str(tmp_path / "cache")
        plan = FaultPlan(
            faults=(
                Fault(CRASH, 0, 0),
                Fault(RAISE, 1, 0),
                Fault(CORRUPT_CACHE, 2, 0),
            ),
            cache_dir=cache_dir,
        )
        chaotic = run_fig9_fig10(
            SWEEP_KERNELS, EXPERIMENT,
            exec_config=_cfg(
                jobs=2, use_cache=True, cache_dir=cache_dir,
                fault_plan=plan, journal=True,
            ),
        )
        assert _sweep_fingerprint(chaotic) == _sweep_fingerprint(clean_sweep)

    def test_killed_sweep_resumes_without_recompute(
        self, four_cpus, tmp_path, clean_sweep
    ):
        """A fault that exhausts every attempt of one kernel kills the
        sweep; rerunning with resume recovers the journaled kernels and
        computes only the rest (verified by exec_meta task counters)."""
        from repro.analysis.experiments import run_fig9_fig10

        cache_dir = str(tmp_path / "cache")
        fatal = raise_plan(*[(3, a) for a in range(2 + RETRIES)])
        cfg = _cfg(
            jobs=2, use_cache=True, cache_dir=cache_dir,
            journal=True, fault_plan=fatal,
        )
        with pytest.raises(InjectedFault):
            run_fig9_fig10(SWEEP_KERNELS, EXPERIMENT, exec_config=cfg)

        from repro.config import GPUConfig as _GPU
        from repro.config import SamplingConfig

        journal = SweepJournal.for_sweep(
            "fig9_fig10",
            (SWEEP_KERNELS, EXPERIMENT, _GPU(), SamplingConfig()),
            tmp_path / "cache" / "journals",
        )
        completed = journal.load()
        assert completed  # the kill landed mid-sweep, after some work
        assert "conv" not in completed  # the fatal task never finished

        resumed = run_fig9_fig10(
            SWEEP_KERNELS, EXPERIMENT,
            exec_config=cfg.with_(fault_plan=None, resume=True),
        )
        assert _sweep_fingerprint(resumed) == _sweep_fingerprint(clean_sweep)
        # Journaled kernels were not recomputed: the resumed run's map
        # saw only the missing tasks.
        assert resumed.exec_meta["items"] == len(SWEEP_KERNELS) - len(completed)

    def test_corrupt_cache_entries_recomputed_mid_sweep(
        self, four_cpus, tmp_path, clean_sweep
    ):
        """Cache corruption injected *between* runs: a second sweep over
        poisoned entries quarantines and recomputes, identically."""
        from repro.analysis.experiments import run_fig9_fig10
        from repro.exec.cache import ProfileCache

        cache_dir = str(tmp_path / "cache")
        cfg = _cfg(jobs=2, use_cache=True, cache_dir=cache_dir)
        first = run_fig9_fig10(SWEEP_KERNELS, EXPERIMENT, exec_config=cfg)
        assert _sweep_fingerprint(first) == _sweep_fingerprint(clean_sweep)

        cache = ProfileCache(cache_dir)
        assert cache.entries()
        for path in cache.entries():
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 3])

        again = run_fig9_fig10(SWEEP_KERNELS, EXPERIMENT, exec_config=cfg)
        assert _sweep_fingerprint(again) == _sweep_fingerprint(clean_sweep)


@pytest.mark.slow
class TestScalingResume:
    def test_scaling_sweep_resumes(self, tmp_path):
        """run_scaling journals per scale and resumes identically."""
        from repro.analysis.scaling import run_scaling

        cache_dir = str(tmp_path / "cache")
        scales = (0.0625, 0.125)
        cfg = ExecutionConfig(
            jobs=1, use_cache=True, cache_dir=cache_dir, journal=True
        )
        clean = run_scaling("stream", scales=scales, exec_config=cfg)

        resumed = run_scaling(
            "stream", scales=scales, exec_config=cfg.with_(resume=True)
        )
        assert resumed == clean  # ScalePoint is a frozen dataclass
