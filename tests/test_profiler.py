"""Tests for the functional profiler."""

import numpy as np
import pytest

from repro.profiler import profile_kernel, profile_launch
from repro.profiler.functional import KernelProfile, LaunchProfile

from tests.conftest import make_manual_launch, make_uniform_kernel


class TestProfileLaunch:
    def test_counts_match_trace(self):
        launch = make_manual_launch([20, 40, 60], mem_every=4, warps_per_block=2)
        profile = profile_launch(launch)
        assert profile.num_blocks == 3
        np.testing.assert_array_equal(profile.warp_insts, [40, 80, 120])
        np.testing.assert_array_equal(profile.thread_insts, [1280, 2560, 3840])
        # mem_every=4: ceil(n/4) mem insts per warp, 1 request each.
        np.testing.assert_array_equal(profile.mem_requests, [10, 20, 30])

    def test_stall_probability(self):
        launch = make_manual_launch([40], mem_every=4)
        profile = profile_launch(launch)
        assert profile.stall_probability[0] == pytest.approx(10 / 40)

    def test_block_size_ratio_mean_one(self):
        launch = make_manual_launch([10, 20, 30])
        profile = profile_launch(launch)
        assert profile.block_size_ratio.mean() == pytest.approx(1.0)

    def test_block_size_cov_zero_for_uniform(self):
        launch = make_manual_launch([25, 25, 25, 25])
        profile = profile_launch(launch)
        assert profile.block_size_cov == pytest.approx(0.0)

    def test_block_size_cov_positive_for_varied(self):
        launch = make_manual_launch([10, 100])
        profile = profile_launch(launch)
        assert profile.block_size_cov > 0.5

    def test_profile_matches_simulated_instructions(self):
        """The profiler and the simulator must agree exactly — the
        deterministic-regeneration invariant."""
        from repro.config import GPUConfig
        from repro.sim import GPUSimulator

        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        profile = profile_launch(launch)
        result = GPUSimulator(GPUConfig(num_sms=4)).run_launch(launch)
        assert result.issued_warp_insts == profile.total_warp_insts


class TestKernelProfile:
    def test_totals(self):
        kernel = make_uniform_kernel(num_launches=3)
        profile = profile_kernel(kernel)
        assert profile.num_launches == 3
        assert profile.total_warp_insts == sum(
            p.total_warp_insts for p in profile.launches
        )
        assert profile.total_thread_insts > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KernelProfile("k", [])

    def test_launch_profile_validation(self):
        with pytest.raises(ValueError):
            LaunchProfile(
                "k", 0, 2,
                warp_insts=np.array([1, 2]),
                thread_insts=np.array([1]),
                mem_requests=np.array([1, 2]),
            )
