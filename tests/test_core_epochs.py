"""Tests for epoch construction (Eq. 4 / Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.epochs import build_epochs
from repro.profiler.functional import LaunchProfile


def make_profile(warp_insts, mem_requests, thread_insts=None):
    warp_insts = np.asarray(warp_insts, dtype=np.int64)
    mem_requests = np.asarray(mem_requests, dtype=np.int64)
    if thread_insts is None:
        thread_insts = warp_insts * 32
    return LaunchProfile(
        kernel_name="k",
        launch_id=0,
        warps_per_block=4,
        warp_insts=warp_insts,
        thread_insts=np.asarray(thread_insts, dtype=np.int64),
        mem_requests=mem_requests,
    )


class TestBuildEpochs:
    def test_epoch_partition(self):
        prof = make_profile([100] * 10, [10] * 10)
        table = build_epochs(prof, occupancy=4)
        assert table.num_epochs == 3  # 4 + 4 + 2
        np.testing.assert_array_equal(table.starts, [0, 4, 8])
        np.testing.assert_array_equal(table.counts, [4, 4, 2])
        assert table.num_blocks == 10

    def test_epoch_of_block(self):
        prof = make_profile([100] * 10, [10] * 10)
        table = build_epochs(prof, occupancy=4)
        assert table.epoch_of_block(0) == 0
        assert table.epoch_of_block(3) == 0
        assert table.epoch_of_block(4) == 1
        assert table.epoch_of_block(9) == 2
        with pytest.raises(IndexError):
            table.epoch_of_block(10)

    def test_stall_probability_is_mean_of_block_ratios(self):
        # Eq. 5: mean over blocks of x/y, not sum(x)/sum(y).
        prof = make_profile([100, 200], [10, 40])
        table = build_epochs(prof, occupancy=2)
        expected = (10 / 100 + 40 / 200) / 2
        assert table.stall_probability[0] == pytest.approx(expected)

    def test_uniform_blocks_zero_variation(self):
        prof = make_profile([100] * 8, [20] * 8)
        table = build_epochs(prof, occupancy=4)
        np.testing.assert_allclose(table.variation_factor, 0.0, atol=1e-12)

    def test_outlier_block_raises_variation_factor(self):
        warp = [100] * 8
        warp[2] = 2000  # outlier in epoch 0
        prof = make_profile(warp, [10] * 8)
        table = build_epochs(prof, occupancy=4)
        assert table.variation_factor[0] > 0.5
        assert table.variation_factor[1] == pytest.approx(0.0, abs=1e-12)

    def test_variation_factor_is_max_of_x_and_y_cov(self):
        # Blocks with equal warp insts but wildly different mem requests:
        # CoV(Y) = 0 but CoV(X) large -> VF = CoV(X).
        prof = make_profile([100] * 4, [1, 1, 1, 61])
        table = build_epochs(prof, occupancy=4)
        x = np.array([1, 1, 1, 61], dtype=float)
        expected = x.std() / x.mean()
        assert table.variation_factor[0] == pytest.approx(expected)

    def test_intra_feature_vectors_normalized_by_mean(self):
        prof = make_profile([100] * 8, [10] * 4 + [30] * 4)
        table = build_epochs(prof, occupancy=4)
        vecs = table.intra_feature_vectors()
        assert vecs.shape == (2, 1)
        assert vecs.mean() == pytest.approx(1.0)
        assert vecs[1, 0] == pytest.approx(3.0 * vecs[0, 0])

    def test_occupancy_larger_than_launch(self):
        prof = make_profile([100] * 3, [10] * 3)
        table = build_epochs(prof, occupancy=100)
        assert table.num_epochs == 1
        assert table.counts[0] == 3

    def test_rejects_bad_occupancy(self):
        prof = make_profile([100], [10])
        with pytest.raises(ValueError):
            build_epochs(prof, occupancy=0)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 60),
        occ=st.integers(1, 20),
        seed=st.integers(0, 100),
    )
    def test_epochs_partition_every_block(self, n, occ, seed):
        rng = np.random.default_rng(seed)
        warp = rng.integers(10, 1000, n)
        mem = rng.integers(1, 9, n) * warp // 10 + 1
        prof = make_profile(warp, mem)
        table = build_epochs(prof, occ)
        assert table.counts.sum() == n
        assert (table.counts >= 1).all()
        assert (table.counts <= occ).all()
        # Vectorized stall probability matches the naive loop.
        for e in range(table.num_epochs):
            lo = table.starts[e]
            hi = lo + table.counts[e]
            naive = np.mean(mem[lo:hi] / warp[lo:hi])
            assert table.stall_probability[e] == pytest.approx(naive)
