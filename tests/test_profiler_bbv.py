"""Tests for per-launch BBV profiling (the footnote-2 extension)."""

import numpy as np
import pytest

from repro.profiler import launch_bbv, launch_bbvs
from repro.workloads.base import LaunchSpec, Segment, build_kernel


def variant_kernel():
    a = LaunchSpec(
        segments=(Segment(count=24, insts_per_warp=32),),
        warps_per_block=2,
        bb_offset=0,
        data_key=0,
    )
    b = LaunchSpec(
        segments=(Segment(count=24, insts_per_warp=32),),
        warps_per_block=2,
        bb_offset=9,  # different code path
        data_key=1,
    )
    return build_kernel("v", "test", "regular", [a, b, a], 3)


class TestLaunchBBV:
    def test_normalized(self):
        kernel = variant_kernel()
        bbv = launch_bbv(kernel.launches[0])
        assert bbv.sum() == pytest.approx(1.0)
        assert (bbv >= 0).all()

    def test_same_code_same_bbv(self):
        kernel = variant_kernel()
        a = launch_bbv(kernel.launches[0])
        c = launch_bbv(kernel.launches[2])
        np.testing.assert_allclose(a, c)

    def test_different_code_different_bbv(self):
        kernel = variant_kernel()
        a = launch_bbv(kernel.launches[0])
        b = launch_bbv(kernel.launches[1])
        # Disjoint bb_offset ranges: the vectors cannot overlap.
        assert float(a @ b) == pytest.approx(0.0)

    def test_matrix_shape_and_weight(self):
        kernel = variant_kernel()
        mat = launch_bbvs(kernel, weight=2.0)
        assert mat.shape[0] == 3
        np.testing.assert_allclose(mat.sum(axis=1), 2.0)

    def test_bbv_separates_variants_in_interlaunch_plan(self):
        """The footnote-2 use case end to end: BBV columns force
        different-code launches into different clusters even when their
        Eq. 2 features agree."""
        from repro.core.interlaunch import plan_inter_launch
        from repro.profiler import profile_kernel

        kernel = variant_kernel()
        profile = profile_kernel(kernel)
        extra = launch_bbvs(kernel, weight=1.0)
        plan = plan_inter_launch(profile, extra_features=extra)
        assert plan.cluster_of(0) == plan.cluster_of(2)
        assert plan.cluster_of(0) != plan.cluster_of(1)
