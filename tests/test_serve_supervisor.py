"""Supervised multi-process serving (``repro.serve.supervisor``,
DESIGN.md §14) — the daemon chaos suite.

The supervision contract under test:

1. **Crash isolation** — an injected worker death never takes the
   daemon down: the worker respawns, the request retries on a healthy
   worker, and the served payload is bit-identical to a fresh direct
   run, exactly-once per content key.
2. **Hang detection** — a worker scripted to stall past the heartbeat
   deadline is killed and its request retried.
3. **Backpressure** — past ``max_backlog`` requests are shed with a
   structured ``overloaded`` error carrying a retry-after hint, never
   queued without bound.
4. **Graceful degradation** — repeated respawns flip the daemon onto
   its in-process thread path; requests keep getting answered.
5. **Lifecycle** — SIGTERM drains a real daemon process gracefully and
   flushes ``--metrics-json``; the client survives one reconnect.

Fault injection rides PR 4's :class:`~repro.exec.faults.FaultPlan`:
faults fire inside workers at exact ``(submission index, attempt)``
coordinates, so every scenario here is deterministic — no sleeps to
"probably" hit a window.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec.faults import CRASH, HANG, RAISE, Fault, FaultPlan
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    direct_payload,
    normalize_request,
    payloads_equal,
    wait_for_server,
)

#: Cheap request used throughout: ~100 blocks, well under a second.
KERNEL = "stream"
SCALE = 0.02


def start_server(tmp_path, **overrides) -> ServerThread:
    config = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        cache_dir=str(tmp_path / "cache"),
        **overrides,
    )
    handle = ServerThread.start(config)
    wait_for_server(handle.socket_path)
    return handle


def sim_params(**extra) -> dict:
    return {"kernel": KERNEL, "scale": SCALE, **extra}


def direct(params: dict) -> dict:
    return direct_payload(normalize_request("simulate", params))


class TestWorkerPool:
    def test_worker_payloads_bit_identical_to_direct(self, tmp_path):
        with start_server(tmp_path, workers=2) as handle:
            with ServeClient(handle.socket_path) as client:
                served = client.simulate(**sim_params(seed=3))
                tbp = client.tbpoint(**sim_params(seed=3))
                stats = client.stats()
        assert payloads_equal(served, direct(sim_params(seed=3)))
        assert tbp["overall_ipc"] > 0
        w = stats["workers"]
        assert w["alive"] == w["configured"] == 2
        assert w["jobs_completed"] == 2
        assert not w["degraded"]
        assert stats["counters"]["sims_run"] == 1
        assert stats["counters"]["tbpoint_runs"] == 1

    def test_workers_zero_keeps_thread_path(self, tmp_path):
        with start_server(tmp_path, workers=0) as handle:
            with ServeClient(handle.socket_path) as client:
                client.simulate(**sim_params())
                stats = client.stats()
        assert "workers" not in stats

    def test_bad_request_rejected_without_retry(self, tmp_path):
        """A RequestError raised inside a worker is the request's own
        fault: reported once, never retried, never a respawn."""
        with start_server(tmp_path, workers=1) as handle:
            with ServeClient(handle.socket_path) as client:
                with pytest.raises(ServeError, match="out of range"):
                    client.simulate(**sim_params(launch=10_000))
                stats = client.stats()
        w = stats["workers"]
        assert w["rejects"] == 1
        assert w["retries"] == 0
        assert w["respawns"] == 0


class TestCrashIsolation:
    def test_crashed_worker_respawned_and_request_retried(self, tmp_path):
        plan = FaultPlan(faults=(Fault(CRASH, 0, 0),))
        with start_server(
            tmp_path, workers=2, fault_plan=plan, worker_retries=2
        ) as handle:
            with ServeClient(handle.socket_path) as client:
                served = client.simulate(**sim_params(seed=11))
                # The daemon is still healthy for the next request.
                again = client.simulate(**sim_params(seed=12))
                stats = client.stats()
        assert payloads_equal(served, direct(sim_params(seed=11)))
        assert payloads_equal(again, direct(sim_params(seed=12)))
        w = stats["workers"]
        assert w["crashes"] >= 1
        assert w["respawns"] >= 1
        assert w["retries"] >= 1
        assert w["alive"] == 2

    def test_exactly_once_per_content_key_under_crash(self, tmp_path):
        """Duplicate in-flight requests coalesce onto one execution
        even while that execution crashes a worker and retries: one
        completed simulation, N identical answers."""
        plan = FaultPlan(faults=(Fault(CRASH, 0, 0),))
        params = sim_params(seed=21)
        with start_server(
            tmp_path, workers=1, fault_plan=plan, worker_retries=2
        ) as handle:
            with ServeClient(handle.socket_path) as client:
                rids = [client.submit("simulate", params) for _ in range(4)]
                answers = [client.drain(rid) for rid in rids]
                stats = client.stats()
        assert all(a == answers[0] for a in answers)
        assert payloads_equal(answers[0], direct(params))
        assert stats["counters"]["sims_run"] == 1
        assert stats["counters"]["coalesced_hits"] == 3
        assert stats["workers"]["jobs_completed"] == 1


class TestHangDetection:
    def test_hung_worker_killed_and_request_retried(self, tmp_path):
        plan = FaultPlan(faults=(Fault(HANG, 0, 0, duration=60.0),))
        with start_server(
            tmp_path,
            workers=2,
            fault_plan=plan,
            hang_timeout=1.0,
            worker_retries=2,
        ) as handle:
            with ServeClient(handle.socket_path) as client:
                served = client.simulate(**sim_params(seed=31))
                stats = client.stats()
        assert payloads_equal(served, direct(sim_params(seed=31)))
        w = stats["workers"]
        assert w["hangs"] == 1
        assert w["respawns"] >= 1
        assert w["retries"] >= 1


class TestBackpressure:
    def test_backlog_full_sheds_with_retry_after(self, tmp_path):
        """One worker pinned by a scripted stall, backlog of one: the
        second distinct request is shed with a structured overloaded
        error instead of queueing."""
        plan = FaultPlan(faults=(Fault(HANG, 0, 0, duration=3.0),))
        with start_server(
            tmp_path, workers=1, max_backlog=1, fault_plan=plan
        ) as handle:
            with ServeClient(handle.socket_path) as client:
                slow = client.submit("simulate", sim_params(seed=41))
                # Give the stalled job time to occupy the one slot.
                time.sleep(0.3)
                shed = client.submit("simulate", sim_params(seed=42))
                with pytest.raises(ServeError) as excinfo:
                    client.drain(shed)
                assert excinfo.value.kind == "overloaded"
                assert excinfo.value.retry_after > 0
                answered = client.drain(slow)
                stats = client.stats()
        assert payloads_equal(answered, direct(sim_params(seed=41)))
        assert stats["counters"]["shed_requests"] >= 1
        assert stats["counters"]["errors"] >= 1


class TestGracefulDegradation:
    def test_repeated_crashes_degrade_to_thread_path(self, tmp_path):
        """A worker-killing environment (every attempt crashes) flips
        the pool into degraded mode; the daemon answers everything on
        its in-process path, bit-identically."""
        plan = FaultPlan(
            faults=tuple(Fault(CRASH, 0, a) for a in range(4))
        )
        with start_server(
            tmp_path,
            workers=1,
            fault_plan=plan,
            worker_retries=3,
            degrade_after=2,
        ) as handle:
            with ServeClient(handle.socket_path) as client:
                served = client.simulate(**sim_params(seed=51))
                # Degraded now: later requests skip the pool entirely.
                later = client.simulate(**sim_params(seed=52))
                stats = client.stats()
        assert payloads_equal(served, direct(sim_params(seed=51)))
        assert payloads_equal(later, direct(sim_params(seed=52)))
        assert stats["workers"]["degraded"]
        assert stats["workers"]["degrade_reason"]
        assert stats["counters"]["degraded_fallbacks"] >= 2

    def test_retry_budget_exhaustion_falls_back_in_process(self, tmp_path):
        """Crashes consume the per-job budget without tripping the
        degrade threshold: the job's final fallback runs in-process
        and the pool stays up for the next request."""
        plan = FaultPlan(
            faults=tuple(Fault(CRASH, 0, a) for a in range(2))
        )
        with start_server(
            tmp_path,
            workers=1,
            fault_plan=plan,
            worker_retries=1,
            degrade_after=10,
        ) as handle:
            with ServeClient(handle.socket_path) as client:
                served = client.simulate(**sim_params(seed=61))
                clean = client.simulate(**sim_params(seed=62))
                stats = client.stats()
        assert payloads_equal(served, direct(sim_params(seed=61)))
        assert payloads_equal(clean, direct(sim_params(seed=62)))
        assert stats["counters"]["worker_exhausted_fallbacks"] == 1
        assert not stats["workers"]["degraded"]
        assert stats["workers"]["failures"] == 1


class TestChaosGate:
    """The PR 9 acceptance scenario: one plan kills a worker
    mid-request and hangs another on a later attempt; the daemon stays
    up, every request is answered bit-identically to a fresh direct
    run, exactly-once per content key, and the supervision counters
    land in ``--metrics-json``."""

    def test_crash_then_hang_chaos_gate(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        plan = FaultPlan(
            faults=(
                Fault(CRASH, 0, 0),               # request 0: worker dies
                Fault(RAISE, 1, 0),               # request 1: first attempt fails
                Fault(HANG, 1, 1, duration=60.0),  # ...second attempt hangs
            )
        )
        params0 = sim_params(seed=71)
        params1 = sim_params(seed=72)
        with start_server(
            tmp_path,
            workers=2,
            fault_plan=plan,
            worker_retries=2,
            hang_timeout=1.0,
            metrics_json=str(metrics),
        ) as handle:
            with ServeClient(handle.socket_path) as client:
                rid0 = client.submit("simulate", params0)
                rid1 = client.submit("simulate", params1)
                served0 = client.drain(rid0)
                served1 = client.drain(rid1)
                stats = client.stats()
        # Answered, bit-identical, exactly-once per content key.
        assert payloads_equal(served0, direct(params0))
        assert payloads_equal(served1, direct(params1))
        assert stats["counters"]["sims_run"] == 2
        w = stats["workers"]
        assert w["crashes"] >= 1
        assert w["hangs"] == 1
        assert w["respawns"] >= 2
        assert w["retries"] >= 3
        assert w["jobs_completed"] == 2
        assert not w["degraded"]
        # Supervision events are flushed to --metrics-json on drain.
        dumped = json.loads(metrics.read_text())
        assert dumped["workers"]["crashes"] >= 1
        assert dumped["workers"]["hangs"] == 1
        assert dumped["workers"]["respawns"] >= 2
        assert dumped["counters"]["sims_run"] == 2


class TestClientReconnect:
    def test_call_reconnects_once_after_server_restart(self, tmp_path):
        """A connection severed between calls (daemon restart on the
        same socket) is survived by exactly one reconnect; requests are
        idempotent under content keys, so the resend is safe."""
        sock = str(tmp_path / "serve.sock")
        first = start_server(tmp_path)
        client = ServeClient(sock)
        assert client.ping()["protocol"] >= 1
        first.stop()
        second = start_server(tmp_path)
        try:
            served = client.simulate(**sim_params(seed=81))
            assert payloads_equal(served, direct(sim_params(seed=81)))
            assert client.reconnects == 1
        finally:
            client.close()
            second.stop()

    def test_retry_connect_false_surfaces_the_failure(self, tmp_path):
        from repro.serve import ServeConnectionError

        sock = str(tmp_path / "serve.sock")
        first = start_server(tmp_path)
        client = ServeClient(sock, retry_connect=False)
        client.ping()
        first.stop()
        second = start_server(tmp_path)
        try:
            with pytest.raises(ServeConnectionError):
                client.ping()
            assert client.reconnects == 0
        finally:
            client.close()
            second.stop()


class TestSigtermDrain:
    def test_sigterm_drains_and_flushes_metrics(self, tmp_path):
        """A real ``repro serve`` process under SIGTERM (the
        container/systemd stop signal) answers what it accepted,
        flushes ``--metrics-json`` and exits cleanly."""
        import repro

        sock = str(tmp_path / "serve.sock")
        metrics = tmp_path / "metrics.json"
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "--cache-dir", str(tmp_path / "cache"),
                "serve",
                "--socket", sock,
                "--metrics-json", str(metrics),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            wait_for_server(sock, timeout=60.0)
            with ServeClient(sock) as client:
                served = client.simulate(**sim_params(seed=91))
            assert payloads_equal(served, direct(sim_params(seed=91)))
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out.decode(errors="replace")
        dumped = json.loads(metrics.read_text())
        assert dumped["counters"]["sims_run"] == 1
        assert dumped["draining"] is True


class TestRequestCLI:
    """``repro request`` exits nonzero with a structured JSON error on
    stderr when the daemon refuses — over unix sockets and TCP."""

    def _run_request(self, argv):
        from repro._cli import main

        return main(argv)

    def test_unix_error_payload_exits_nonzero(self, tmp_path, capsys):
        with start_server(tmp_path) as handle:
            with pytest.raises(SystemExit) as excinfo:
                self._run_request([
                    "--scale", str(SCALE),
                    "request", "simulate", KERNEL,
                    "--socket", handle.socket_path,
                    "--launch", "10000",
                ])
            assert excinfo.value.code == 2
            captured = capsys.readouterr()
            assert captured.out == ""
            error = json.loads(captured.err)
            assert "out of range" in error["error"]

    def test_unix_success_prints_payload(self, tmp_path, capsys):
        with start_server(tmp_path) as handle:
            rc = self._run_request([
                "request", "ping", "--socket", handle.socket_path,
            ])
            assert not rc
            payload = json.loads(capsys.readouterr().out)
            assert payload["protocol"] >= 1

    def test_tcp_error_payload_exits_nonzero(self, tmp_path, capsys):
        config = ServeConfig(
            host="127.0.0.1", port=0, cache_dir=str(tmp_path / "cache")
        )
        with ServerThread.start(config) as handle:
            host, port = handle.address
            wait_for_server(host=host, port=port)
            with pytest.raises(SystemExit) as excinfo:
                self._run_request([
                    "--scale", str(SCALE),
                    "request", "simulate", KERNEL,
                    "--host", host, "--port", str(port),
                    "--launch", "10000",
                ])
            assert excinfo.value.code == 2
            error = json.loads(capsys.readouterr().err)
            assert "out of range" in error["error"]

    def test_draining_error_kind_reaches_the_client(self, tmp_path):
        """The machine-readable classification rides the wire: a
        draining server refuses compute with ``error_kind: draining``
        and the client surfaces it as ``ServeError.kind``."""
        with start_server(tmp_path, max_concurrency=1) as handle:
            client = ServeClient(handle.socket_path)
            # Queue enough work that the drain is still in progress
            # when the post-shutdown request arrives.
            rids = [
                client.submit("simulate", sim_params(seed=seed))
                for seed in (1, 2, 3)
            ]
            client.shutdown()
            with pytest.raises(ServeError) as excinfo:
                client.simulate(**sim_params(seed=99))
            assert excinfo.value.kind == "draining"
            for rid in rids:
                client.drain(rid)  # accepted work still answered
            client.close()
