"""Property-based tests for estimate composition invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimates import compose_kernel_estimate
from repro.core.interlaunch import InterLaunchPlan
from repro.profiler.functional import KernelProfile, LaunchProfile
from repro.sim.gpu import LaunchResult


@st.composite
def composition_case(draw):
    n_launches = draw(st.integers(1, 8))
    n_clusters = draw(st.integers(1, n_launches))
    labels = [draw(st.integers(0, n_clusters - 1)) for _ in range(n_launches)]
    # Ensure every cluster is populated, then renumber by appearance.
    for c in range(n_clusters):
        if c not in labels:
            labels[draw(st.integers(0, n_launches - 1))] = c
    remap: dict[int, int] = {}
    labels = [remap.setdefault(c, len(remap)) for c in labels]
    n_clusters = len(remap)
    reps = []
    for c in range(n_clusters):
        members = [i for i, l in enumerate(labels) if l == c]
        reps.append(members[draw(st.integers(0, len(members) - 1))])

    launches = []
    for i in range(n_launches):
        blocks = draw(st.integers(1, 6))
        per = draw(st.integers(50, 5_000))
        launches.append(
            LaunchProfile(
                kernel_name="k",
                launch_id=i,
                warps_per_block=2,
                warp_insts=np.full(blocks, per, dtype=np.int64),
                thread_insts=np.full(blocks, per * 32, dtype=np.int64),
                mem_requests=np.full(blocks, max(1, per // 7), dtype=np.int64),
            )
        )
    profile = KernelProfile("k", launches)

    rep_results = {}
    for r in set(reps):
        total = launches[r].total_warp_insts
        skipped = draw(st.integers(0, total - 1))
        issued = total - skipped
        wall = draw(st.integers(max(1, issued // 14), issued + 1000))
        extra = float(skipped) / draw(st.floats(0.5, 14.0)) if skipped else 0.0
        rep_results[r] = LaunchResult(
            launch_id=r,
            issued_warp_insts=issued,
            wall_cycles=wall,
            per_sm_issued=[issued],
            per_sm_busy_cycles=[wall],
            skipped_warp_insts=skipped,
            extra_cycles=extra,
        )
    plan = InterLaunchPlan(
        labels=np.asarray(labels, dtype=np.int64),
        representatives=np.asarray(reps, dtype=np.int64),
        features=np.zeros((n_launches, 4)),
    )
    return profile, plan, rep_results


@settings(max_examples=60, deadline=None)
@given(composition_case())
def test_composition_invariants(case):
    profile, plan, rep_results = case
    est = compose_kernel_estimate(profile, plan, rep_results)

    # Instruction conservation: the estimate covers the whole kernel.
    assert est.total_warp_insts == sum(
        p.total_warp_insts for p in profile.launches
    )
    # Sample size counts only the representatives' simulated portions.
    assert est.simulated_insts == sum(
        r.issued_warp_insts for r in rep_results.values()
    )
    assert 0 < est.sample_size <= 1
    # Cycles are positive and the IPC is finite and positive.
    assert est.est_total_cycles > 0
    assert 0 < est.overall_ipc < np.inf
    # Unsimulated launches inherit exactly their representative's IPC.
    for launch in est.launches:
        if not launch.simulated:
            rep = rep_results[plan.representative_of(launch.launch_id)]
            assert launch.est_ipc == pytest.approx(rep.est_ipc, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(composition_case())
def test_ipc_is_weighted_harmonic_combination(case):
    """Overall IPC lies between the min and max per-launch IPCs."""
    profile, plan, rep_results = case
    est = compose_kernel_estimate(profile, plan, rep_results)
    per_launch = [l.est_ipc for l in est.launches]
    assert min(per_launch) - 1e-9 <= est.overall_ipc <= max(per_launch) + 1e-9
