"""Sweep checkpoint journal (``repro.exec.journal``).

The journal's contract: everything it gives back on ``load()`` is
exactly what was ``record()``-ed (later entry wins), any line it cannot
vouch for — torn tail, garbage, checksum mismatch — is silently dropped
so its task gets recomputed, and two sweeps with different parameters
can never see each other's entries.
"""

from __future__ import annotations

import base64
import json

import pytest

from repro.config import GPUConfig, SamplingConfig
from repro.exec import ExecutionConfig, SweepJournal, open_sweep_journal
from repro.exec.journal import default_journal_dir, sweep_key


@pytest.fixture
def journal(tmp_path):
    return SweepJournal(tmp_path / "sweep.jsonl")


class TestRecordLoad:
    def test_roundtrip(self, journal):
        journal.record("stream", {"ipc": 1.25, "n": 7})
        journal.record("kmeans", [1, 2, 3])
        loaded = journal.load()
        assert loaded == {"stream": {"ipc": 1.25, "n": 7}, "kmeans": [1, 2, 3]}

    def test_empty_journal_loads_empty(self, journal):
        assert journal.load() == {}
        assert len(journal) == 0

    def test_later_entry_wins(self, journal):
        journal.record("stream", "first")
        journal.record("stream", "second")
        assert journal.load() == {"stream": "second"}
        assert len(journal) == 1

    def test_reset_clears(self, journal):
        journal.record("stream", 1)
        journal.reset()
        assert journal.load() == {}
        journal.reset()  # resetting a missing journal is fine

    def test_unwritable_location_is_best_effort(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        j = SweepJournal(blocker / "sweep.jsonl")
        j.record("stream", 1)  # must not raise
        assert j.load() == {}

    def test_unpicklable_result_is_best_effort(self, journal):
        journal.record("good", 42)
        journal.record("bad", lambda: None)  # must not raise
        assert journal.load() == {"good": 42}


class TestCorruptionTolerance:
    def test_torn_tail_tolerated(self, journal):
        journal.record("stream", 1)
        journal.record("kmeans", 2)
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[:-15])  # tear the last line
        assert journal.load() == {"stream": 1}

    def test_garbage_line_skipped(self, journal):
        journal.record("stream", 1)
        with open(journal.path, "a") as fh:
            fh.write("{not json at all\n")
        journal.record("kmeans", 2)
        assert journal.load() == {"stream": 1, "kmeans": 2}

    def test_checksum_mismatch_skipped(self, journal):
        journal.record("stream", 1)
        journal.record("kmeans", 2)
        lines = journal.path.read_text().splitlines()
        record = json.loads(lines[0])
        record["data"] = base64.b64encode(b"tampered").decode("ascii")
        lines[0] = json.dumps(record)
        journal.path.write_text("\n".join(lines) + "\n")
        assert journal.load() == {"kmeans": 2}

    def test_missing_field_skipped(self, journal):
        with open(journal.path, "w") as fh:
            fh.write(json.dumps({"task": "stream"}) + "\n")
        journal.record("kmeans", 2)
        assert journal.load() == {"kmeans": 2}


class TestSweepKey:
    def test_stable_for_equal_params(self):
        params = (("stream", "kmeans"), GPUConfig(), SamplingConfig())
        assert sweep_key("fig9", params) == sweep_key("fig9", params)

    def test_sensitive_to_every_parameter(self):
        base = (("stream",), GPUConfig(), SamplingConfig())
        keys = {
            sweep_key("fig9", base),
            sweep_key("sensitivity", base),
            sweep_key("fig9", (("kmeans",), GPUConfig(), SamplingConfig())),
            sweep_key(
                "fig9", (("stream",), GPUConfig(num_sms=4), SamplingConfig())
            ),
            sweep_key(
                "fig9",
                (
                    ("stream",),
                    GPUConfig(),
                    SamplingConfig(inter_threshold=0.11),
                ),
            ),
        }
        assert len(keys) == 5

    def test_for_sweep_places_file_under_root(self, tmp_path):
        j = SweepJournal.for_sweep("fig9", ("p",), tmp_path)
        assert j.path.parent == tmp_path
        assert j.path.name == f"{sweep_key('fig9', ('p',))}.jsonl"


class TestOpenSweepJournal:
    def test_disabled_by_default(self):
        journal, done = open_sweep_journal("fig9", ("p",), ExecutionConfig())
        assert journal is None
        assert done == {}

    def test_fresh_run_resets(self, tmp_path):
        cfg = ExecutionConfig(journal=True, journal_dir=str(tmp_path))
        journal, done = open_sweep_journal("fig9", ("p",), cfg)
        assert done == {}
        journal.record("stream", 1)
        # A second non-resume run of the same sweep starts clean.
        journal2, done2 = open_sweep_journal("fig9", ("p",), cfg)
        assert done2 == {}
        assert journal2.load() == {}

    def test_resume_returns_completed(self, tmp_path):
        cfg = ExecutionConfig(journal=True, journal_dir=str(tmp_path))
        journal, _ = open_sweep_journal("fig9", ("p",), cfg)
        journal.record("stream", 1)
        _, done = open_sweep_journal(
            "fig9", ("p",), cfg.with_(resume=True)
        )
        assert done == {"stream": 1}

    def test_resume_alone_enables_journal(self, tmp_path):
        cfg = ExecutionConfig(resume=True, journal_dir=str(tmp_path))
        journal, done = open_sweep_journal("fig9", ("p",), cfg)
        assert journal is not None
        assert done == {}

    def test_cache_dir_relocates_journals(self, tmp_path):
        cfg = ExecutionConfig(journal=True, cache_dir=str(tmp_path / "cache"))
        journal, _ = open_sweep_journal("fig9", ("p",), cfg)
        assert journal.path.parent == tmp_path / "cache" / "journals"

    def test_journal_dir_beats_cache_dir(self, tmp_path):
        cfg = ExecutionConfig(
            journal=True,
            cache_dir=str(tmp_path / "cache"),
            journal_dir=str(tmp_path / "journals"),
        )
        journal, _ = open_sweep_journal("fig9", ("p",), cfg)
        assert journal.path.parent == tmp_path / "journals"

    def test_default_journal_dir_under_cache_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("TBPOINT_CACHE_DIR", str(tmp_path))
        assert default_journal_dir() == tmp_path / "journals"


class TestListJournals:
    def test_sorted_regardless_of_creation_order(self, tmp_path):
        from repro.exec.journal import list_journals

        for stem in ("ffff", "0000", "aaaa"):
            (tmp_path / f"{stem}.jsonl").write_text("")
        (tmp_path / "not-a-journal.txt").write_text("")
        listed = list_journals(tmp_path)
        assert [p.stem for p in listed] == ["0000", "aaaa", "ffff"]

    def test_empty_for_absent_dir(self, tmp_path):
        from repro.exec.journal import list_journals

        assert list_journals(tmp_path / "nope") == []


class TestJournalsInfo:
    def test_absent_dir(self, tmp_path):
        from repro.exec.journal import journals_info

        info = journals_info(tmp_path / "nope")
        assert info["journals"] == 0
        assert info["bytes"] == 0
        assert info["newest_key"] is None
        assert info["dir"] == str(tmp_path / "nope")

    def test_counts_sizes_and_newest(self, tmp_path):
        import os

        from repro.exec.journal import journals_info

        old = SweepJournal.for_sweep("fig9", ("p",), tmp_path)
        old.record("stream", 1)
        new = SweepJournal.for_sweep("serve", ("q",), tmp_path)
        new.record("kmeans", 2)
        # Make mtime ordering unambiguous regardless of fs resolution.
        past = old.path.stat().st_mtime - 10
        os.utime(old.path, (past, past))
        (tmp_path / "not-a-journal.txt").write_text("ignored")
        info = journals_info(tmp_path)
        assert info["journals"] == 2
        assert info["bytes"] == (
            old.path.stat().st_size + new.path.stat().st_size
        )
        assert info["newest_key"] == new.path.stem
