"""Tests for trace save/load round-trips."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.profiler import profile_launch
from repro.sim import GPUSimulator
from repro.trace.io import load_launch, save_launch

from tests.conftest import make_manual_launch, make_uniform_kernel


class TestRoundTrip:
    def test_exact_columns(self, tmp_path):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=24)
        launch = kernel.launches[0]
        path = tmp_path / "launch.npz"
        save_launch(launch, path)
        loaded = load_launch(path)

        assert loaded.kernel_name == launch.kernel_name
        assert loaded.num_blocks == launch.num_blocks
        assert loaded.warps_per_block == launch.warps_per_block
        assert loaded.num_bbs == launch.num_bbs
        for tb in range(launch.num_blocks):
            orig, back = launch.block(tb), loaded.block(tb)
            assert len(orig.warps) == len(back.warps)
            for wo, wb in zip(orig.warps, back.warps):
                np.testing.assert_array_equal(wo.op, wb.op)
                np.testing.assert_array_equal(wo.active, wb.active)
                np.testing.assert_array_equal(wo.mem_req, wb.mem_req)
                np.testing.assert_array_equal(wo.addr, wb.addr)
                np.testing.assert_array_equal(wo.spread, wb.spread)
                np.testing.assert_array_equal(wo.bb, wb.bb)

    def test_profile_identical(self, tmp_path):
        launch = make_manual_launch([10, 30, 20], warps_per_block=2)
        path = tmp_path / "manual.npz"
        save_launch(launch, path)
        loaded = load_launch(path)
        a, b = profile_launch(launch), profile_launch(loaded)
        np.testing.assert_array_equal(a.warp_insts, b.warp_insts)
        np.testing.assert_array_equal(a.mem_requests, b.mem_requests)

    def test_simulation_identical(self, tmp_path):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=32)
        launch = kernel.launches[0]
        path = tmp_path / "sim.npz"
        save_launch(launch, path)
        loaded = load_launch(path)
        gpu = GPUConfig(num_sms=2, warps_per_sm=8)
        a = GPUSimulator(gpu).run_launch(launch)
        b = GPUSimulator(gpu).run_launch(loaded)
        assert a.wall_cycles == b.wall_cycles
        assert a.issued_warp_insts == b.issued_warp_insts

    def test_version_check(self, tmp_path):
        launch = make_manual_launch([8])
        path = tmp_path / "v.npz"
        save_launch(launch, path)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_launch(path)


class TestProcessSafety:
    def test_loaded_launch_is_picklable(self, tmp_path):
        """A loaded launch must survive a pickle round-trip so it can
        ride into worker processes like a generated launch does (its
        block factory is the module-level ``ArchiveBlockFactory``, not
        a closure — PROC002)."""
        import pickle

        kernel = make_uniform_kernel(blocks_per_launch=4, warps_per_block=2)
        launch = kernel.launches[0]
        path = tmp_path / "launch.npz"
        save_launch(launch, path)
        loaded = load_launch(path)
        restored = pickle.loads(pickle.dumps(loaded))
        for orig, copy in zip(loaded.iter_blocks(), restored.iter_blocks()):
            assert orig.tb_id == copy.tb_id
            for w0, w1 in zip(orig.warps, copy.warps):
                assert np.array_equal(w0.op, w1.op)
                assert np.array_equal(w0.addr, w1.addr)
