"""Tests for the memory-hierarchy front end."""

import pytest

from repro.config import GPUConfig
from repro.sim.memory import MemoryHierarchy, ReferenceMemoryHierarchy


@pytest.fixture(
    params=[MemoryHierarchy, ReferenceMemoryHierarchy],
    ids=["fast", "reference"],
)
def tiny_hierarchy(request):
    """Both front ends must satisfy the same behavioural contract
    (bit-identity between them is proven separately in
    test_sim_memory_fastpath.py)."""
    cfg = GPUConfig(
        num_sms=2,
        l1_kib=1,
        l2_kib=16,
        l1_latency=10,
        l2_latency=50,
        dram_latency=100,
        dram_row_miss_penalty=40,
        dram_service=8,
        dram_channels=2,
        dram_banks=2,
    )
    return request.param(cfg), cfg


class TestMemoryHierarchy:
    def test_miss_then_l1_hit(self, tiny_hierarchy):
        mem, cfg = tiny_hierarchy
        first = mem.load(0, addr=0, spread=0, num_req=1, now=0)
        assert first > cfg.l1_latency  # went to DRAM
        second = mem.load(0, addr=0, spread=0, num_req=1, now=1000)
        assert second == 1000 + cfg.l1_latency

    def test_l1s_are_private_l2_is_shared(self, tiny_hierarchy):
        mem, cfg = tiny_hierarchy
        mem.load(0, addr=0, spread=0, num_req=1, now=0)
        # Other SM misses its L1 but hits the shared L2.
        done = mem.load(1, addr=0, spread=0, num_req=1, now=1000)
        assert done == 1000 + cfg.l2_latency

    def test_multi_transaction_takes_slowest(self, tiny_hierarchy):
        mem, cfg = tiny_hierarchy
        mem.load(0, addr=0, spread=0, num_req=1, now=0)  # warm line 0
        # One warm line + one cold line: completion bound by the miss.
        done = mem.load(0, addr=0, spread=4096, num_req=2, now=1000)
        assert done > 1000 + cfg.l1_latency

    def test_transactions_walk_spread(self, tiny_hierarchy):
        mem, _ = tiny_hierarchy
        mem.load(0, addr=0, spread=128, num_req=4, now=0)
        # All four lines now L1-resident.
        l1 = mem.l1s[0]
        assert l1.contains(0) and l1.contains(128)
        assert l1.contains(256) and l1.contains(384)

    def test_reset_clears_everything(self, tiny_hierarchy):
        mem, cfg = tiny_hierarchy
        mem.load(0, addr=0, spread=0, num_req=1, now=0)
        mem.reset()
        stats = mem.stats()
        assert stats["dram_requests"] == 0
        done = mem.load(0, addr=0, spread=0, num_req=1, now=0)
        assert done > cfg.l2_latency  # cold again

    def test_stats_keys(self, tiny_hierarchy):
        mem, _ = tiny_hierarchy
        mem.load(0, addr=0, spread=0, num_req=1, now=0)
        stats = mem.stats()
        for key in (
            "l1_hit_rate",
            "l2_hit_rate",
            "dram_requests",
            "dram_row_hit_rate",
            "dram_mean_queue_delay",
        ):
            assert key in stats

    def test_completion_never_before_l1_latency(self, tiny_hierarchy):
        mem, cfg = tiny_hierarchy
        for i in range(20):
            done = mem.load(0, addr=i * 128, spread=0, num_req=1, now=i * 7)
            assert done >= i * 7 + cfg.l1_latency
