"""Tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiler import profile_kernel, profile_launch
from repro.workloads import (
    ALL_KERNELS,
    IRREGULAR_KERNELS,
    REGULAR_KERNELS,
    TABLE_VI,
    benchmark_info,
    get_workload,
)
from repro.workloads.base import (
    LaunchSpec,
    Segment,
    build_kernel,
    kernel_seed,
    scaled,
)

TINY = 0.02  # scale for fast structure checks


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(TABLE_VI) == 12
        assert len(ALL_KERNELS) == 12
        assert set(IRREGULAR_KERNELS) | set(REGULAR_KERNELS) == set(ALL_KERNELS)
        assert len(IRREGULAR_KERNELS) == 5

    def test_benchmark_info(self):
        info = benchmark_info("bfs")
        assert info.suite == "lonestar"
        assert info.kind == "irregular"
        with pytest.raises(KeyError):
            benchmark_info("nope")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("bfs", scale=0)
        with pytest.raises(ValueError):
            get_workload("bfs", scale=2)

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_every_kernel_builds_and_validates(self, name):
        kernel = get_workload(name, scale=TINY)
        info = benchmark_info(name)
        assert kernel.num_launches == info.launches
        assert kernel.kind == info.kind
        block = kernel.launches[0].block(0)
        for warp in block.warps:
            warp.validate()

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_full_scale_block_counts_match_table_vi(self, name):
        kernel = get_workload(name, scale=1.0)
        info = benchmark_info(name)
        # Rounding when distributing blocks across launches allows a
        # small deviation from the Table VI total.
        assert abs(kernel.num_blocks - info.blocks) / info.blocks < 0.06


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = get_workload("bfs", scale=TINY, seed=5)
        b = get_workload("bfs", scale=TINY, seed=5)
        ba, bb = a.launches[0].block(3), b.launches[0].block(3)
        for wa, wb in zip(ba.warps, bb.warps):
            np.testing.assert_array_equal(wa.addr, wb.addr)
            np.testing.assert_array_equal(wa.op, wb.op)

    def test_different_seed_different_trace(self):
        a = get_workload("bfs", scale=TINY, seed=5)
        b = get_workload("bfs", scale=TINY, seed=6)
        wa = a.launches[0].block(3).warps[0]
        wb = b.launches[0].block(3).warps[0]
        assert not np.array_equal(wa.addr, wb.addr)

    def test_regeneration_identical(self):
        kernel = get_workload("spmv", scale=TINY)
        launch = kernel.launches[0]
        first = launch.block(7)
        launch._cache.clear()
        second = launch.block(7)
        for wa, wb in zip(first.warps, second.warps):
            np.testing.assert_array_equal(wa.addr, wb.addr)
            np.testing.assert_array_equal(wa.mem_req, wb.mem_req)


class TestDataKey:
    def test_shared_data_key_makes_near_identical_launches(self):
        kernel = get_workload("lbm", scale=TINY)
        p0 = profile_launch(kernel.launches[0])
        p1 = profile_launch(kernel.launches[1])
        # Identical block sizes; memory requests agree except for the
        # small perturbed fraction (launch-specific boundary data).
        np.testing.assert_array_equal(p0.warp_insts, p1.warp_insts)
        assert np.mean(p0.mem_requests == p1.mem_requests) > 0.85

    def test_perturbed_blocks_differ_across_launches(self):
        spec = LaunchSpec(
            segments=(Segment(count=64, size_cov=0.3, mem_ratio=0.1),),
            warps_per_block=2,
            data_key=0,
            perturb=0.5,
        )
        kernel = build_kernel("p", "test", "regular", [spec, spec], 1)
        p0 = profile_launch(kernel.launches[0])
        p1 = profile_launch(kernel.launches[1])
        assert not np.array_equal(p0.warp_insts, p1.warp_insts)
        # but a shared fraction is identical
        assert np.mean(p0.warp_insts == p1.warp_insts) > 0.2

    def test_fresh_data_launches_differ(self):
        kernel = get_workload("bfs", scale=TINY)
        # launches of different levels have different block populations
        sizes = {l.num_blocks for l in kernel.launches}
        assert len(sizes) >= 2


class TestStructure:
    def test_irregular_kernels_have_size_variation(self):
        for name in IRREGULAR_KERNELS:
            kernel = get_workload(name, scale=TINY)
            profile = profile_launch(kernel.launches[0])
            assert profile.block_size_cov > 0.1, name

    def test_regular_kernels_uniform_blocks(self):
        for name in ("lbm", "hotspot", "black"):
            kernel = get_workload(name, scale=TINY)
            profile = profile_launch(kernel.launches[0])
            assert profile.block_size_cov < 0.05, name

    def test_mst_has_outliers(self):
        kernel = get_workload("mst", scale=0.2)
        profile = profile_kernel(kernel)
        ratios = np.concatenate([p.block_size_ratio for p in profile.launches])
        assert ratios.max() > 3.0  # straggler blocks

    def test_mem_ratio_realized(self):
        spec = LaunchSpec(
            segments=(Segment(count=8, insts_per_warp=100, mem_ratio=0.2),),
            warps_per_block=2,
        )
        kernel = build_kernel("m", "test", "regular", [spec], 1)
        profile = profile_launch(kernel.launches[0])
        stall = profile.stall_probability.mean()
        # coalesce_mean=1 -> requests ~ mem insts ~ 20% of warp insts.
        assert 0.15 < stall < 0.25


class TestHelpers:
    def test_scaled(self):
        assert scaled(1000, 0.5) == 500
        assert scaled(1000, 0.001, floor=32) == 32
        assert scaled(1000, 1.0) == 1000

    def test_kernel_seed_stable_and_distinct(self):
        assert kernel_seed("a", 1) == kernel_seed("a", 1)
        assert kernel_seed("a", 1) != kernel_seed("b", 1)
        assert kernel_seed("a", 1) != kernel_seed("a", 2)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            Segment(count=0)
        with pytest.raises(ValueError):
            Segment(count=1, mem_ratio=1.5)
        with pytest.raises(ValueError):
            Segment(count=1, pattern="zigzag")
        with pytest.raises(ValueError):
            Segment(count=1, insts_per_warp=2)

    def test_launch_spec_validation(self):
        with pytest.raises(ValueError):
            LaunchSpec(segments=())
        with pytest.raises(ValueError):
            LaunchSpec(segments=(Segment(count=1),), warps_per_block=0)

    @settings(max_examples=15, deadline=None)
    @given(
        count=st.integers(1, 64),
        ipw=st.integers(8, 120),
        mem=st.floats(0.0, 0.5),
        wpb=st.integers(1, 8),
        seed=st.integers(0, 50),
    )
    def test_arbitrary_segments_validate(self, count, ipw, mem, wpb, seed):
        spec = LaunchSpec(
            segments=(
                Segment(count=count, insts_per_warp=ipw, mem_ratio=mem),
            ),
            warps_per_block=wpb,
        )
        kernel = build_kernel("h", "test", "regular", [spec], seed)
        block = kernel.launches[0].block(count - 1)
        for warp in block.warps:
            warp.validate()
        stats = block.stats
        assert stats.warp_insts == sum(w.warp_insts for w in block.warps)
        assert stats.mem_requests == sum(w.mem_requests for w in block.warps)
