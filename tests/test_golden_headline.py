"""Golden regression pins for the headline pipeline numbers.

``tests/fixtures/golden_headline.json`` checks in the exact TBPoint
overall IPC, sample size, instruction totals and representative counts
for three cheap Table VI kernels at a small scale.  Any change to the
workload generator, profiler, clustering, region sampler or timing
simulator that moves these numbers shows up here immediately — with the
old and new values side by side — instead of silently shifting every
reproduced figure.

If a change is *intentional*, regenerate the fixture::

    PYTHONPATH=src python tests/test_golden_headline.py

and commit the diff together with the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import get_workload, run_tbpoint

FIXTURE = Path(__file__).parent / "fixtures" / "golden_headline.json"

# Tight enough to catch any behavioural drift; loose enough to tolerate
# floating-point differences across BLAS builds / platforms.
REL_TOL = 1e-9

#: Every registered memory front end must reproduce the pinned launch
#: IPCs exactly — a silent timing divergence in any of them fails
#: tier-1 here, not just the property suite.
FRONT_ENDS = ("fast", "reference", "vector")


def _golden() -> dict:
    with open(FIXTURE) as fh:
        return json.load(fh)["kernels"]


def _golden_front_end_ipc() -> dict:
    with open(FIXTURE) as fh:
        return json.load(fh)["front_end_ipc"]


def _measure(name: str, entry: dict) -> dict:
    kernel = get_workload(name, scale=entry["scale"], seed=entry["seed"])
    tbp = run_tbpoint(kernel)
    return {
        "scale": entry["scale"],
        "seed": entry["seed"],
        "overall_ipc": tbp.overall_ipc,
        "sample_size": tbp.sample_size,
        "total_warp_insts": tbp.estimate.total_warp_insts,
        "num_representatives": len(tbp.rep_results),
    }


@pytest.mark.parametrize("name", sorted(_golden()))
def test_headline_numbers_pinned(name):
    entry = _golden()[name]
    got = _measure(name, entry)
    assert got["overall_ipc"] == pytest.approx(
        entry["overall_ipc"], rel=REL_TOL
    ), f"{name}: overall IPC drifted from the golden value"
    assert got["sample_size"] == pytest.approx(
        entry["sample_size"], rel=REL_TOL
    ), f"{name}: sample size drifted from the golden value"
    assert got["total_warp_insts"] == entry["total_warp_insts"]
    assert got["num_representatives"] == entry["num_representatives"]


def test_fixture_covers_three_kernels():
    assert len(_golden()) == 3


def _measure_launch_ipc(name: str, entry: dict, front_end: str) -> float:
    """Simulate the first launch of ``name`` through one front end and
    return its IPC (issued warp instructions per wall cycle)."""
    from repro.config import GPUConfig
    from repro.sim.gpu import GPUSimulator

    kernel = get_workload(name, scale=entry["scale"], seed=entry["seed"])
    sim = GPUSimulator(GPUConfig(), engine="compact", mem_front_end=front_end)
    result = sim.run_launch(kernel.launches[0])
    return result.issued_warp_insts / result.wall_cycles


@pytest.mark.parametrize("front_end", list(FRONT_ENDS))
@pytest.mark.parametrize("name", sorted(["stream", "spmv", "lbm", "mri"]))
def test_front_end_launch_ipc_pinned(name, front_end):
    """Cross-front-end golden pins on the memory-bound kernels: the
    pinned launch IPC (generated via the ``fast`` front end) must be
    reproduced to float tolerance by every registered front end."""
    entry = _golden_front_end_ipc()[name]
    got = _measure_launch_ipc(name, entry, front_end)
    assert got == pytest.approx(entry["launch_ipc"], rel=REL_TOL), (
        f"{name}/{front_end}: launch IPC drifted from the golden value"
    )


def test_front_end_ipc_fixture_covers_memory_bound_kernels():
    from repro.sim.memory import MEMORY_FRONT_ENDS

    assert sorted(_golden_front_end_ipc()) == ["lbm", "mri", "spmv", "stream"]
    assert set(FRONT_ENDS) == set(MEMORY_FRONT_ENDS)


def regenerate() -> None:
    """Recompute every golden entry in place (run as a script)."""
    with open(FIXTURE) as fh:
        doc = json.load(fh)
    for name, entry in doc["kernels"].items():
        doc["kernels"][name] = _measure(name, entry)
        print(f"{name}: {doc['kernels'][name]}")
    for name, entry in doc.setdefault("front_end_ipc", {}).items():
        entry["launch_ipc"] = _measure_launch_ipc(name, entry, "fast")
        print(f"{name}: {entry}")
    with open(FIXTURE, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    regenerate()
