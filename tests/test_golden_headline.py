"""Golden regression pins for the headline pipeline numbers.

``tests/fixtures/golden_headline.json`` checks in the exact TBPoint
overall IPC, sample size, instruction totals and representative counts
for three cheap Table VI kernels at a small scale.  Any change to the
workload generator, profiler, clustering, region sampler or timing
simulator that moves these numbers shows up here immediately — with the
old and new values side by side — instead of silently shifting every
reproduced figure.

If a change is *intentional*, regenerate the fixture::

    PYTHONPATH=src python tests/test_golden_headline.py

and commit the diff together with the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import get_workload, run_tbpoint

FIXTURE = Path(__file__).parent / "fixtures" / "golden_headline.json"

# Tight enough to catch any behavioural drift; loose enough to tolerate
# floating-point differences across BLAS builds / platforms.
REL_TOL = 1e-9


def _golden() -> dict:
    with open(FIXTURE) as fh:
        return json.load(fh)["kernels"]


def _measure(name: str, entry: dict) -> dict:
    kernel = get_workload(name, scale=entry["scale"], seed=entry["seed"])
    tbp = run_tbpoint(kernel)
    return {
        "scale": entry["scale"],
        "seed": entry["seed"],
        "overall_ipc": tbp.overall_ipc,
        "sample_size": tbp.sample_size,
        "total_warp_insts": tbp.estimate.total_warp_insts,
        "num_representatives": len(tbp.rep_results),
    }


@pytest.mark.parametrize("name", sorted(_golden()))
def test_headline_numbers_pinned(name):
    entry = _golden()[name]
    got = _measure(name, entry)
    assert got["overall_ipc"] == pytest.approx(
        entry["overall_ipc"], rel=REL_TOL
    ), f"{name}: overall IPC drifted from the golden value"
    assert got["sample_size"] == pytest.approx(
        entry["sample_size"], rel=REL_TOL
    ), f"{name}: sample size drifted from the golden value"
    assert got["total_warp_insts"] == entry["total_warp_insts"]
    assert got["num_representatives"] == entry["num_representatives"]


def test_fixture_covers_three_kernels():
    assert len(_golden()) == 3


def regenerate() -> None:
    """Recompute every golden entry in place (run as a script)."""
    with open(FIXTURE) as fh:
        doc = json.load(fh)
    for name, entry in doc["kernels"].items():
        doc["kernels"][name] = _measure(name, entry)
        print(f"{name}: {doc['kernels'][name]}")
    with open(FIXTURE, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    regenerate()
