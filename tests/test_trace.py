"""Tests for the trace representation layer."""

import numpy as np
import pytest

from repro.trace import (
    OP_ALU,
    OP_BRANCH,
    OP_MEM_GLOBAL,
    OP_MEM_SHARED,
    STALL_CYCLES,
    WARP_WIDTH,
    BlockTrace,
    KernelTrace,
    LaunchTrace,
    WarpTrace,
    is_dram_op,
    is_mem_op,
)
from repro.trace.warptrace import concat_warp_traces


def make_warp(n=8, mem_every=4):
    op = np.full(n, OP_ALU, dtype=np.uint8)
    mem_req = np.zeros(n, dtype=np.uint8)
    op[::mem_every] = OP_MEM_GLOBAL
    mem_req[::mem_every] = 2
    return WarpTrace(
        op,
        np.full(n, 16, dtype=np.uint8),
        mem_req,
        np.arange(n, dtype=np.int64) * 128,
        np.full(n, 128, dtype=np.int64),
        np.zeros(n, dtype=np.uint16),
    )


class TestInstructionPredicates:
    def test_mem_predicates_scalar(self):
        assert is_mem_op(OP_MEM_SHARED)
        assert is_mem_op(OP_MEM_GLOBAL)
        assert not is_mem_op(OP_ALU)
        assert is_dram_op(OP_MEM_GLOBAL)
        assert not is_dram_op(OP_MEM_SHARED)
        assert not is_dram_op(OP_BRANCH)

    def test_mem_predicates_array(self):
        ops = np.array([OP_ALU, OP_MEM_GLOBAL, OP_MEM_SHARED], dtype=np.uint8)
        np.testing.assert_array_equal(is_dram_op(ops), [False, True, False])

    def test_stall_table_covers_all_ops(self):
        assert len(STALL_CYCLES) == 8
        # DRAM-bound ops carry no static stall (computed dynamically).
        assert STALL_CYCLES[OP_MEM_GLOBAL] == 0


class TestWarpTrace:
    def test_counts(self):
        w = make_warp(n=8, mem_every=4)
        assert w.warp_insts == 8
        assert w.thread_insts == 8 * 16
        assert w.mem_requests == 2 * 2  # two mem insts, two transactions

    def test_bb_counts(self):
        w = make_warp()
        counts = w.bb_counts(num_bbs=3)
        assert counts[0] == len(w)
        assert counts[1:].sum() == 0

    def test_rejects_length_mismatch(self):
        w = make_warp()
        with pytest.raises(ValueError):
            WarpTrace(w.op, w.active[:-1], w.mem_req, w.addr, w.spread, w.bb)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WarpTrace(
                np.empty(0, np.uint8),
                np.empty(0, np.uint8),
                np.empty(0, np.uint8),
                np.empty(0, np.int64),
                np.empty(0, np.int64),
                np.empty(0, np.uint16),
            )

    def test_rejects_zero_active(self):
        w = make_warp()
        active = w.active.copy()
        active[0] = 0
        with pytest.raises(ValueError):
            WarpTrace(w.op, active, w.mem_req, w.addr, w.spread, w.bb)

    def test_rejects_overwide_active(self):
        w = make_warp()
        active = w.active.copy()
        active[0] = WARP_WIDTH + 1
        with pytest.raises(ValueError):
            WarpTrace(w.op, active, w.mem_req, w.addr, w.spread, w.bb)

    def test_rejects_dram_op_without_transactions(self):
        w = make_warp()
        mem_req = w.mem_req.copy()
        mem_req[0] = 0  # position 0 is a mem op
        with pytest.raises(ValueError):
            WarpTrace(w.op, w.active, mem_req, w.addr, w.spread, w.bb)

    def test_rejects_alu_with_transactions(self):
        w = make_warp()
        mem_req = w.mem_req.copy()
        mem_req[1] = 3  # position 1 is ALU
        with pytest.raises(ValueError):
            WarpTrace(w.op, w.active, mem_req, w.addr, w.spread, w.bb)

    def test_concat(self):
        a, b = make_warp(8), make_warp(12)
        c = concat_warp_traces([a, b])
        assert c.warp_insts == 20
        assert c.mem_requests == a.mem_requests + b.mem_requests

    def test_concat_empty_list(self):
        with pytest.raises(ValueError):
            concat_warp_traces([])


class TestBlockTrace:
    def test_stats_aggregate_warps(self):
        block = BlockTrace(3, [make_warp(), make_warp()])
        stats = block.stats
        assert stats.tb_id == 3
        assert stats.warp_insts == 16
        assert stats.thread_insts == 2 * 8 * 16
        assert stats.stall_probability == stats.mem_requests / stats.warp_insts

    def test_stats_cached(self):
        block = BlockTrace(0, [make_warp()])
        assert block.stats is block.stats

    def test_requires_warps(self):
        with pytest.raises(ValueError):
            BlockTrace(0, [])

    def test_bb_counts(self):
        block = BlockTrace(0, [make_warp(), make_warp()])
        assert block.bb_counts(2)[0] == 16


class TestLaunchTrace:
    def _launch(self, n=10):
        return LaunchTrace(
            "k", 0, n, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
        )

    def test_block_range_checked(self):
        launch = self._launch(5)
        with pytest.raises(IndexError):
            launch.block(5)
        with pytest.raises(IndexError):
            launch.block(-1)

    def test_blocks_cached(self):
        launch = self._launch()
        assert launch.block(2) is launch.block(2)

    def test_iteration_order(self):
        launch = self._launch(4)
        ids = [b.tb_id for b in launch.iter_blocks()]
        assert ids == [0, 1, 2, 3]

    def test_factory_id_mismatch_detected(self):
        bad = LaunchTrace(
            "k", 0, 3, 1, lambda tb_id: BlockTrace(0, [make_warp()]), 1
        )
        with pytest.raises(ValueError):
            bad.block(1)

    def test_rejects_empty_launch(self):
        with pytest.raises(ValueError):
            LaunchTrace("k", 0, 0, 1, lambda t: None, 1)


def _picklable_factory(tb_id):
    return BlockTrace(tb_id, [make_warp()])


class TestBlockMemo:
    def _launch(self, n=10, memo=None):
        return LaunchTrace(
            "k", 0, n, 1,
            lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1,
            block_memo=memo,
        )

    def test_default_window(self):
        assert self._launch().block_memo == 256

    def test_constructor_window(self):
        assert self._launch(memo=4).block_memo == 4

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            self._launch(memo=0)
        with pytest.raises(ValueError):
            self._launch(memo=-1)
        with pytest.raises(ValueError):
            self._launch().resize_block_memo(0)

    def test_first_pass_never_counts_regenerations(self):
        launch = self._launch(n=10, memo=3)
        for b in launch.iter_blocks():
            pass
        assert launch.regenerations == 0

    def test_second_pass_regenerates_through_small_window(self):
        launch = self._launch(n=10, memo=3)
        for _ in range(2):
            for b in launch.iter_blocks():
                pass
        # Pass 2 walks 0..9 again; with a 3-wide window every block has
        # been evicted by the time it comes around.
        assert launch.regenerations == 10

    def test_full_window_eliminates_regenerations(self):
        launch = self._launch(n=10, memo=10)
        for _ in range(3):
            for b in launch.iter_blocks():
                pass
        assert launch.regenerations == 0

    def test_resize_grows_window(self):
        launch = self._launch(n=10, memo=3)
        for b in launch.iter_blocks():
            pass
        launch.resize_block_memo(10)
        assert launch.block_memo == 10
        for _ in range(2):
            for b in launch.iter_blocks():
                pass
        # Only the first re-walk regenerates (warming the larger
        # window: blocks 0-6 were evicted, 7-9 survived); once
        # resident, further passes are free.
        assert launch.regenerations == 7

    def test_resize_shrink_evicts_immediately(self):
        launch = self._launch(n=10, memo=10)
        blocks = list(launch.iter_blocks())
        launch.resize_block_memo(2)
        assert len(launch._cache) == 2
        # The two most recently used (8, 9) survive the shrink.
        assert launch.block(9) is blocks[9]
        assert launch.block(0) is not blocks[0]
        assert launch.regenerations == 1

    def test_memo_window_is_pure_perf_knob(self):
        wide = self._launch(n=8, memo=8)
        narrow = self._launch(n=8, memo=1)
        for _ in range(2):
            for a, b in zip(wide.iter_blocks(), narrow.iter_blocks()):
                assert a.tb_id == b.tb_id
                np.testing.assert_array_equal(a.warps[0].op, b.warps[0].op)
                np.testing.assert_array_equal(a.warps[0].addr, b.warps[0].addr)

    def test_pickle_resets_bookkeeping_keeps_window(self):
        import pickle

        launch = LaunchTrace("k", 0, 6, 1, _picklable_factory, 1, block_memo=2)
        for _ in range(2):
            for b in launch.iter_blocks():
                pass
        assert launch.regenerations > 0
        clone = pickle.loads(pickle.dumps(launch))
        assert clone.block_memo == 2
        assert clone.regenerations == 0
        for b in clone.iter_blocks():
            pass
        assert clone.regenerations == 0  # fresh bitmap: first pass


class TestKernelTrace:
    def test_counts(self):
        launches = [
            LaunchTrace(
                "k", i, 5, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
            )
            for i in range(3)
        ]
        kernel = KernelTrace("k", "suite", "regular", launches)
        assert kernel.num_launches == 3
        assert kernel.num_blocks == 15

    def test_rejects_bad_kind(self):
        launch = LaunchTrace(
            "k", 0, 1, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
        )
        with pytest.raises(ValueError):
            KernelTrace("k", "s", "weird", [launch])

    def test_rejects_noncontiguous_launch_ids(self):
        launch = LaunchTrace(
            "k", 1, 1, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
        )
        with pytest.raises(ValueError):
            KernelTrace("k", "s", "regular", [launch])
