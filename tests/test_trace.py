"""Tests for the trace representation layer."""

import numpy as np
import pytest

from repro.trace import (
    OP_ALU,
    OP_BRANCH,
    OP_MEM_GLOBAL,
    OP_MEM_SHARED,
    STALL_CYCLES,
    WARP_WIDTH,
    BlockTrace,
    KernelTrace,
    LaunchTrace,
    WarpTrace,
    is_dram_op,
    is_mem_op,
)
from repro.trace.warptrace import concat_warp_traces


def make_warp(n=8, mem_every=4):
    op = np.full(n, OP_ALU, dtype=np.uint8)
    mem_req = np.zeros(n, dtype=np.uint8)
    op[::mem_every] = OP_MEM_GLOBAL
    mem_req[::mem_every] = 2
    return WarpTrace(
        op,
        np.full(n, 16, dtype=np.uint8),
        mem_req,
        np.arange(n, dtype=np.int64) * 128,
        np.full(n, 128, dtype=np.int64),
        np.zeros(n, dtype=np.uint16),
    )


class TestInstructionPredicates:
    def test_mem_predicates_scalar(self):
        assert is_mem_op(OP_MEM_SHARED)
        assert is_mem_op(OP_MEM_GLOBAL)
        assert not is_mem_op(OP_ALU)
        assert is_dram_op(OP_MEM_GLOBAL)
        assert not is_dram_op(OP_MEM_SHARED)
        assert not is_dram_op(OP_BRANCH)

    def test_mem_predicates_array(self):
        ops = np.array([OP_ALU, OP_MEM_GLOBAL, OP_MEM_SHARED], dtype=np.uint8)
        np.testing.assert_array_equal(is_dram_op(ops), [False, True, False])

    def test_stall_table_covers_all_ops(self):
        assert len(STALL_CYCLES) == 8
        # DRAM-bound ops carry no static stall (computed dynamically).
        assert STALL_CYCLES[OP_MEM_GLOBAL] == 0


class TestWarpTrace:
    def test_counts(self):
        w = make_warp(n=8, mem_every=4)
        assert w.warp_insts == 8
        assert w.thread_insts == 8 * 16
        assert w.mem_requests == 2 * 2  # two mem insts, two transactions

    def test_bb_counts(self):
        w = make_warp()
        counts = w.bb_counts(num_bbs=3)
        assert counts[0] == len(w)
        assert counts[1:].sum() == 0

    def test_rejects_length_mismatch(self):
        w = make_warp()
        with pytest.raises(ValueError):
            WarpTrace(w.op, w.active[:-1], w.mem_req, w.addr, w.spread, w.bb)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WarpTrace(
                np.empty(0, np.uint8),
                np.empty(0, np.uint8),
                np.empty(0, np.uint8),
                np.empty(0, np.int64),
                np.empty(0, np.int64),
                np.empty(0, np.uint16),
            )

    def test_rejects_zero_active(self):
        w = make_warp()
        active = w.active.copy()
        active[0] = 0
        with pytest.raises(ValueError):
            WarpTrace(w.op, active, w.mem_req, w.addr, w.spread, w.bb)

    def test_rejects_overwide_active(self):
        w = make_warp()
        active = w.active.copy()
        active[0] = WARP_WIDTH + 1
        with pytest.raises(ValueError):
            WarpTrace(w.op, active, w.mem_req, w.addr, w.spread, w.bb)

    def test_rejects_dram_op_without_transactions(self):
        w = make_warp()
        mem_req = w.mem_req.copy()
        mem_req[0] = 0  # position 0 is a mem op
        with pytest.raises(ValueError):
            WarpTrace(w.op, w.active, mem_req, w.addr, w.spread, w.bb)

    def test_rejects_alu_with_transactions(self):
        w = make_warp()
        mem_req = w.mem_req.copy()
        mem_req[1] = 3  # position 1 is ALU
        with pytest.raises(ValueError):
            WarpTrace(w.op, w.active, mem_req, w.addr, w.spread, w.bb)

    def test_concat(self):
        a, b = make_warp(8), make_warp(12)
        c = concat_warp_traces([a, b])
        assert c.warp_insts == 20
        assert c.mem_requests == a.mem_requests + b.mem_requests

    def test_concat_empty_list(self):
        with pytest.raises(ValueError):
            concat_warp_traces([])


class TestBlockTrace:
    def test_stats_aggregate_warps(self):
        block = BlockTrace(3, [make_warp(), make_warp()])
        stats = block.stats
        assert stats.tb_id == 3
        assert stats.warp_insts == 16
        assert stats.thread_insts == 2 * 8 * 16
        assert stats.stall_probability == stats.mem_requests / stats.warp_insts

    def test_stats_cached(self):
        block = BlockTrace(0, [make_warp()])
        assert block.stats is block.stats

    def test_requires_warps(self):
        with pytest.raises(ValueError):
            BlockTrace(0, [])

    def test_bb_counts(self):
        block = BlockTrace(0, [make_warp(), make_warp()])
        assert block.bb_counts(2)[0] == 16


class TestLaunchTrace:
    def _launch(self, n=10):
        return LaunchTrace(
            "k", 0, n, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
        )

    def test_block_range_checked(self):
        launch = self._launch(5)
        with pytest.raises(IndexError):
            launch.block(5)
        with pytest.raises(IndexError):
            launch.block(-1)

    def test_blocks_cached(self):
        launch = self._launch()
        assert launch.block(2) is launch.block(2)

    def test_iteration_order(self):
        launch = self._launch(4)
        ids = [b.tb_id for b in launch.iter_blocks()]
        assert ids == [0, 1, 2, 3]

    def test_factory_id_mismatch_detected(self):
        bad = LaunchTrace(
            "k", 0, 3, 1, lambda tb_id: BlockTrace(0, [make_warp()]), 1
        )
        with pytest.raises(ValueError):
            bad.block(1)

    def test_rejects_empty_launch(self):
        with pytest.raises(ValueError):
            LaunchTrace("k", 0, 0, 1, lambda t: None, 1)


class TestKernelTrace:
    def test_counts(self):
        launches = [
            LaunchTrace(
                "k", i, 5, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
            )
            for i in range(3)
        ]
        kernel = KernelTrace("k", "suite", "regular", launches)
        assert kernel.num_launches == 3
        assert kernel.num_blocks == 15

    def test_rejects_bad_kind(self):
        launch = LaunchTrace(
            "k", 0, 1, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
        )
        with pytest.raises(ValueError):
            KernelTrace("k", "s", "weird", [launch])

    def test_rejects_noncontiguous_launch_ids(self):
        launch = LaunchTrace(
            "k", 1, 1, 1, lambda tb_id: BlockTrace(tb_id, [make_warp()]), 1
        )
        with pytest.raises(ValueError):
            KernelTrace("k", "s", "regular", [launch])
