# Fake test suite giving every fixture registry entry parametrized
# coverage (one via the decorator, one via a literal-tuple for-loop).
import pytest


@pytest.mark.parametrize("engine", ["fixture-compact", "fixture-reference"])
def test_engine_matches_oracle(engine):
    pass


def test_front_end_grid():
    for front_end in ("fixture-fast", "fixture-oracle"):
        pass
