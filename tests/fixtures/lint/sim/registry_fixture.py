# Planted implementation registries for the oracle-parity checker.
# The names are fixture-specific so they can never collide with (or
# accidentally vouch for) the real simulator registries.


class FixtureSimulator:
    ENGINES = ("fixture-compact", "fixture-reference")


MEMORY_FRONT_ENDS = {
    "fixture-fast": object,
    "fixture-oracle": object,
}
