# Every violation here carries a pragma; a lint run must report zero
# findings for this file.
# lint: disable-file=DET004
import os
import time

import numpy as np


def wall_clock_trailing():
    return time.perf_counter()  # lint: disable=DET001


def wall_clock_preceding():
    # lint: disable=DET001
    return time.monotonic()


def two_rules_one_line(root):
    # lint: disable=DET002,DET005
    return np.random.default_rng(), root.glob("*")


def environ_read_file_pragma():
    # Covered by the disable-file=DET004 pragma at the top.
    return os.environ.get("HOME"), os.getenv("HOME")
