# Planted determinism violations for the lint test suite.  This file
# is parsed by the linter, never imported or executed.
import glob
import os
import time

import numpy as np


def wall_clock_read():
    return time.perf_counter()  # DET001


def unseeded_rng():
    return np.random.default_rng()  # DET002 (argless seeded ctor)


def global_rng():
    return np.random.rand(4)  # DET002 (legacy global-state API)


def seeded_rng_ok(seed):
    return np.random.default_rng(seed)  # clean: explicit seed


def set_iteration(items):
    out = []
    for item in {1, 2, 3}:  # DET003
        out.append(item)
    return out


def sorted_set_ok(items):
    return [x for x in sorted(set(items))]  # clean: explicit ordering


def environ_read():
    return os.environ.get("TBPOINT_CACHE_DIR")  # DET004


def getenv_read():
    return os.getenv("HOME")  # DET004


def unsorted_glob(root):
    return glob.glob(f"{root}/*.npz")  # DET005


def unsorted_method(root):
    return list(root.glob("*.npz"))  # DET005


def sorted_glob_ok(root):
    return sorted(root.glob("*.npz"))  # clean: wrapped in sorted()
