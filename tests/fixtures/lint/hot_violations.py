# Planted hot-loop violations.  Parsed by the linter, never executed.
import numpy as np


def cold_loop(items, rec, out):
    # Unmarked: identical body to the hot loop below, but no findings.
    for item in items:
        out.append(rec.scale * item)
        out.append(rec.scale + item)
        tmp = [item]
        try:
            tmp.pop()
        except IndexError:
            pass


# lint: hot
def hot_function(items, rec, out):
    for item in items:
        out.append(rec.scale * item)  # HOT001: rec.scale and out.append
        out.append(rec.scale + item)  # looked up twice per iteration
        tmp = [item]  # HOT002: list display
        buf = np.zeros(4)  # HOT002: numpy allocation
        try:  # HOT003
            tmp.pop()
        except IndexError:
            pass
        del buf


def hot_marked_loop(items, rec):
    prepared = sorted(items)  # clean: outside the marked loop
    total = 0
    # lint: hot
    while prepared:
        batch = sorted(prepared)  # HOT002: sorted() per iteration
        for extra in batch:  # nested loops inherit hotness
            total += rec.scale * extra  # HOT001: rec.scale twice,
            total -= rec.scale + extra  # via the nested loop
        prepared = prepared[1:]
    return total


def hot_rebound_base_ok(pools, items):
    # lint: hot
    for item in items:
        pool = pools[item]
        pool.append(item)  # clean: 'pool' is rebound every iteration
        pool.append(item)


def hot_justified(items):
    # lint: hot
    while items:
        items = sorted(items[1:])  # lint: disable=HOT002
