"""Planted fork-safety violations (fixture, never imported).

Expected findings: FORK001 x4, FORK002 x1.
"""

import asyncio
import multiprocessing
import os
import socket
import threading

COUNTER = 0
_PARENT_PID: int | None = None


def worker_unguarded(conn):
    global COUNTER
    COUNTER = 1  # FORK002: rebinds a module global, no pid guard


def worker_guarded(conn):
    global COUNTER
    if os.getpid() == _PARENT_PID:
        return
    COUNTER = 2  # clean: parent-PID guard present


def spawn():
    lock = threading.Lock()
    sock = socket.create_connection(("localhost", 1))
    first = multiprocessing.Process(
        target=worker_unguarded,
        args=(lock,),  # FORK001: thread lock crosses the fork
    )
    second = multiprocessing.Process(
        target=worker_guarded,
        # FORK001 x2: open socket + inline asyncio primitive
        args=(sock, asyncio.Event()),
    )
    return first, second


def spawn_writer(writer: asyncio.StreamWriter):
    return multiprocessing.Process(
        target=worker_guarded,
        args=(writer,),  # FORK001: loop-bound StreamWriter
    )
