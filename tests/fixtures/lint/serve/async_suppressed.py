"""The async-safety shapes again, pragma-suppressed (fixture).

Expected findings: none — every pragma carries its reason.
"""

import asyncio
import time


async def quiet() -> None:
    # startup housekeeping before the loop serves  # lint: disable=ASYNC001
    time.sleep(0.0)
    task = asyncio.create_task(asyncio.sleep(0))
    await task
