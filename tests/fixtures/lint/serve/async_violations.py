"""Planted async-safety violations (fixture, never imported).

Expected findings: ASYNC001 x5, ASYNC002 x1, ASYNC003 x1.
"""

import asyncio
import time
from pathlib import Path


def flush_index(path: Path) -> None:
    # A sync helper whose body blocks: calling it from an async def is
    # the one-hop ASYNC001 case.
    path.write_text("x")


async def coro_helper() -> None:
    await asyncio.sleep(0)


class Daemon:
    def __init__(self, journal):
        self._journal = journal

    def submit(self):
        return None

    async def handle(self) -> None:
        time.sleep(0.1)  # ASYNC001: direct blocking call
        fh = open("/tmp/fixture")  # ASYNC001: builtin open
        fh.close()
        self._journal.record("k", {})  # ASYNC001: persistent-store op
        flush_index(Path("/tmp/fixture"))  # ASYNC001: one-hop helper
        fut = self.submit()
        fut.result()  # ASYNC001: Future.result
        coro_helper()  # ASYNC002: coroutine never awaited
        asyncio.create_task(coro_helper())  # ASYNC003: handle dropped
