# Planted process-safety violations.  Parsed by the linter, never
# executed; names like parallel_map are intentionally unresolved.
from dataclasses import dataclass, field


def lambda_to_pool(tasks):
    return parallel_map(lambda t: t * 2, tasks)  # PROC001


def closure_to_pool(tasks, scale):
    def work(t):
        return t * scale

    return parallel_map(work, tasks)  # PROC001


def lambda_assigned_to_pool(pool, tasks):
    work = lambda t: t + 1
    return pool.submit(fn=work, items=tasks)  # PROC001


def module_level_fn_ok(tasks):
    return parallel_map(module_worker, tasks)  # clean: module-level name


def module_worker(t):
    return t


def local_factory_class(cols):
    class LocalBlockFactory:  # PROC002: *Factory inside a function
        def __call__(self, tb_id):
            return cols[tb_id]

    return LocalBlockFactory()


def local_fault_plan():
    class FaultPlan:  # PROC002: FaultPlan inside a function
        pass

    return FaultPlan()


def closure_factory_kwarg(cols):
    def factory(tb_id):
        return cols[tb_id]

    return make_launch(num_blocks=4, factory=factory)  # PROC002


def lambda_factory_kwarg(cols):
    return make_launch(factory=lambda tb_id: cols[tb_id])  # PROC002


def mutable_default(x, acc=[]):  # PROC003
    acc.append(x)
    return acc


def mutable_kwonly_default(x, *, table={}):  # PROC003
    return table.get(x)


def none_default_ok(x, acc=None):  # clean
    return acc or [x]


@dataclass
class PicklableSpec:
    name: str
    tags: list = []  # PROC003: mutable dataclass default


@dataclass
class PicklableSpecOk:
    name: str
    tags: list = field(default_factory=list)  # clean
