"""Planted counter-parity violations (fixture, never imported).

Expected findings: CTR001 x2.
"""

from dataclasses import asdict, dataclass


@dataclass
class FixtureCounters:
    served: int = 0
    shed: int = 0
    ghost: int = 0  # CTR001: declared (and flushed) but never updated

    def as_dict(self) -> dict:
        return asdict(self)


class Daemon:
    def __init__(self) -> None:
        self.counters = FixtureCounters()

    def on_request(self) -> None:
        self.counters.served += 1

    def on_shed(self) -> None:
        c = self.counters
        c.shed += 1
        c.untracked += 1  # CTR001: updated but never flushed
