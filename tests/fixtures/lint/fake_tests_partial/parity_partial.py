# Fake test suite covering only one engine and one front end; the
# oracle-parity checker must flag the two uncovered registry entries.
import pytest


@pytest.mark.parametrize("engine", ["fixture-compact"])
def test_engine_matches_oracle(engine):
    pass


def helper_not_a_test():
    # A for-loop outside a test function vouches for nothing.
    for front_end in ("fixture-oracle",):
        pass


def test_front_end_grid():
    for front_end in ("fixture-fast",):
        pass
