"""Planted message-protocol violations (fixture, never imported).

Expected findings: MSG001 x4, MSG002 x1.
"""

REQUIRED_FIELDS = {
    "request": ("id", "kind"),
    "response": ("id", "ok"),
}


def send_request(sock, send_message):
    msg = {"kind": "simulate"}  # MSG002: required "id" missing
    send_message(sock, msg)


def send_response(sock, send_message):
    send_message(sock, {"id": 1, "ok": True, "result": {}})


def handle(msg):
    kind = msg.get("kind")
    if kind == "simulate":
        return msg.get("params")  # MSG001: "params" never sent
    if kind == "render":  # MSG001: kind never produced
        return msg["deadline"]  # MSG001: "deadline" never sent
    return None


def pump(conn):
    conn.send(("ready", 1))
    item = conn.recv()
    if item[0] == "halt":  # MSG001: tag never sent
        return True
    return False
