"""Tests for IPC composition (Table IV / Eq. 1) and metrics."""

import numpy as np
import pytest

from repro.core.estimates import (
    compose_kernel_estimate,
    geometric_mean,
    sampling_error,
)
from repro.core.interlaunch import InterLaunchPlan
from repro.profiler.functional import KernelProfile, LaunchProfile
from repro.sim.gpu import LaunchResult


def launch_profile(launch_id, total_insts, blocks=4):
    per = total_insts // blocks
    return LaunchProfile(
        kernel_name="k",
        launch_id=launch_id,
        warps_per_block=2,
        warp_insts=np.full(blocks, per, dtype=np.int64),
        thread_insts=np.full(blocks, per * 32, dtype=np.int64),
        mem_requests=np.full(blocks, max(1, per // 10), dtype=np.int64),
    )


def launch_result(launch_id, issued, wall, skipped=0, extra=0.0):
    return LaunchResult(
        launch_id=launch_id,
        issued_warp_insts=issued,
        wall_cycles=wall,
        per_sm_issued=[issued],
        per_sm_busy_cycles=[wall],
        skipped_warp_insts=skipped,
        extra_cycles=extra,
    )


def make_plan(labels, reps):
    return InterLaunchPlan(
        labels=np.asarray(labels, dtype=np.int64),
        representatives=np.asarray(reps, dtype=np.int64),
        features=np.zeros((len(labels), 4)),
    )


class TestComposeKernelEstimate:
    def test_single_fully_simulated_launch(self):
        profile = KernelProfile("k", [launch_profile(0, 1000)])
        plan = make_plan([0], [0])
        rep = launch_result(0, issued=1000, wall=500)
        est = compose_kernel_estimate(profile, plan, {0: rep})
        assert est.overall_ipc == pytest.approx(2.0)
        assert est.sample_size == 1.0
        assert est.total_warp_insts == 1000

    def test_unsimulated_launch_inherits_rep_ipc(self):
        """Table IV: an unsimulated launch's cycles are its own
        instructions divided by the representative's IPC."""
        profile = KernelProfile(
            "k", [launch_profile(0, 1000), launch_profile(1, 3000)]
        )
        plan = make_plan([0, 0], [0])
        rep = launch_result(0, issued=1000, wall=500)  # IPC 2
        est = compose_kernel_estimate(profile, plan, {0: rep})
        assert est.launches[1].est_cycles == pytest.approx(1500)
        assert est.overall_ipc == pytest.approx(2.0)
        assert est.sample_size == pytest.approx(1000 / 4000)
        assert not est.launches[1].simulated

    def test_intra_sampled_rep_uses_est_cycles(self):
        profile = KernelProfile("k", [launch_profile(0, 1000)])
        plan = make_plan([0], [0])
        # 600 simulated in 300 cycles + 400 skipped credited 200 cycles.
        rep = launch_result(0, issued=600, wall=300, skipped=400, extra=200.0)
        est = compose_kernel_estimate(profile, plan, {0: rep})
        assert est.launches[0].est_cycles == pytest.approx(500)
        assert est.overall_ipc == pytest.approx(2.0)
        assert est.sample_size == pytest.approx(0.6)

    def test_two_clusters(self):
        profile = KernelProfile(
            "k",
            [launch_profile(0, 1000), launch_profile(1, 1000),
             launch_profile(2, 2000)],
        )
        plan = make_plan([0, 0, 1], [0, 2])
        reps = {
            0: launch_result(0, issued=1000, wall=1000),  # IPC 1
            2: launch_result(2, issued=2000, wall=500),  # IPC 4
        }
        est = compose_kernel_estimate(profile, plan, reps)
        # cycles: 1000 + 1000 + 500 = 2500 for 4000 insts
        assert est.overall_ipc == pytest.approx(4000 / 2500)

    def test_missing_rep_result_rejected(self):
        profile = KernelProfile("k", [launch_profile(0, 1000)])
        plan = make_plan([0], [0])
        with pytest.raises(ValueError):
            compose_kernel_estimate(profile, plan, {})

    def test_plan_profile_mismatch_rejected(self):
        profile = KernelProfile("k", [launch_profile(0, 1000)])
        plan = make_plan([0, 0], [0])
        with pytest.raises(ValueError):
            compose_kernel_estimate(
                profile, plan, {0: launch_result(0, 1000, 100)}
            )


class TestNoSamplingCorner:
    """The use_inter=False, use_intra=False corner: a trivial plan where
    every launch is its own representative and nothing is skipped."""

    def test_all_simulated_trivial_plan(self):
        profile = KernelProfile(
            "k", [launch_profile(i, 1000 * (i + 1)) for i in range(3)]
        )
        plan = make_plan([0, 1, 2], [0, 1, 2])
        reps = {
            i: launch_result(i, issued=1000 * (i + 1), wall=400 * (i + 1))
            for i in range(3)
        }
        est = compose_kernel_estimate(profile, plan, reps)
        assert all(l.simulated for l in est.launches)
        assert est.sample_size == 1.0
        assert est.total_warp_insts == 6000
        # Overall IPC is the plain ratio of totals, no prediction terms.
        assert est.overall_ipc == pytest.approx(6000 / 2400)

    def test_zero_ipc_representative_rejected(self):
        """A representative with no estimated IPC cannot price an
        unsimulated launch; silently contributing zero cycles would
        inflate the kernel IPC."""
        profile = KernelProfile(
            "k", [launch_profile(0, 1000), launch_profile(1, 1000)]
        )
        plan = make_plan([0, 0], [0])
        broken = launch_result(0, issued=0, wall=500)
        with pytest.raises(ValueError, match="non-positive"):
            compose_kernel_estimate(profile, plan, {0: broken})

    def test_zero_ipc_rep_fine_when_fully_simulated(self):
        """The same degenerate result is harmless under a trivial plan:
        no launch needs the prediction."""
        profile = KernelProfile("k", [launch_profile(0, 1000)])
        plan = make_plan([0], [0])
        broken = launch_result(0, issued=0, wall=500)
        est = compose_kernel_estimate(profile, plan, {0: broken})
        assert est.sample_size == 0.0
        assert est.overall_ipc == pytest.approx(1000 / 500)


class TestMetrics:
    def test_sampling_error(self):
        assert sampling_error(11.0, 10.0) == pytest.approx(0.1)
        assert sampling_error(9.0, 10.0) == pytest.approx(0.1)
        assert sampling_error(10.0, 10.0) == 0.0

    def test_sampling_error_requires_positive_reference(self):
        with pytest.raises(ValueError):
            sampling_error(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_floors_zeros(self):
        # A perfect kernel (error 0) must not zero the geomean.
        assert geometric_mean([0.0, 1.0]) > 0

    def test_geometric_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])
