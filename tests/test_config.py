"""Tests for the configuration layer."""

import pytest

from repro.config import ExperimentConfig, GPUConfig, SamplingConfig


class TestGPUConfig:
    def test_defaults_match_table_v(self):
        cfg = GPUConfig()
        assert cfg.num_sms == 14
        assert cfg.l1_kib == 16
        assert cfg.l2_kib == 768
        assert cfg.l1_line == 128
        assert cfg.dram_channels == 6
        assert cfg.dram_banks == 16
        assert cfg.issue_width == 1

    def test_sm_occupancy_limited_by_warps(self):
        cfg = GPUConfig(warps_per_sm=48, max_blocks_per_sm=8)
        assert cfg.sm_occupancy(16) == 3  # 48 // 16
        assert cfg.sm_occupancy(8) == 6
        assert cfg.sm_occupancy(48) == 1

    def test_sm_occupancy_limited_by_block_cap(self):
        cfg = GPUConfig(warps_per_sm=48, max_blocks_per_sm=8)
        assert cfg.sm_occupancy(4) == 8  # 48 // 4 = 12, capped at 8

    def test_sm_occupancy_at_least_one(self):
        cfg = GPUConfig(warps_per_sm=4)
        assert cfg.sm_occupancy(64) == 1

    def test_system_occupancy(self):
        cfg = GPUConfig(num_sms=14, warps_per_sm=48)
        assert cfg.system_occupancy(16) == 14 * 3

    def test_invalid_warps_per_block(self):
        with pytest.raises(ValueError):
            GPUConfig().sm_occupancy(0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            GPUConfig(l1_line=100)

    def test_rejects_nonpositive_sms(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_rejects_multi_issue(self):
        with pytest.raises(ValueError):
            GPUConfig(issue_width=2)

    def test_with_replaces_fields(self):
        cfg = GPUConfig().with_(num_sms=7, warps_per_sm=24)
        assert cfg.num_sms == 7
        assert cfg.warps_per_sm == 24
        assert cfg.l1_kib == GPUConfig().l1_kib

    def test_frozen(self):
        with pytest.raises(Exception):
            GPUConfig().num_sms = 3


class TestSamplingConfig:
    def test_defaults_match_section_va(self):
        cfg = SamplingConfig()
        assert cfg.inter_threshold == 0.1
        assert cfg.intra_threshold == 0.2
        assert cfg.variation_factor == 0.3
        assert cfg.warm_tolerance == 0.10

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            SamplingConfig(inter_threshold=-0.1)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            SamplingConfig(warm_tolerance=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(warm_tolerance=1.0)

    def test_rejects_single_warm_unit(self):
        with pytest.raises(ValueError):
            SamplingConfig(min_warm_units=1)

    def test_with_replaces_fields(self):
        cfg = SamplingConfig().with_(intra_threshold=0.5)
        assert cfg.intra_threshold == 0.5
        assert cfg.inter_threshold == 0.1


class TestExperimentConfig:
    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(scale=1.5)
        assert ExperimentConfig(scale=1.0).scale == 1.0

    def test_random_fraction_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(random_fraction=0.0)

    def test_target_units_minimum(self):
        with pytest.raises(ValueError):
            ExperimentConfig(target_units=1)
