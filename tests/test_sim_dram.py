"""Tests for the DRAM models (list-backed and array-backed)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.sim.dram import ArrayDRAMModel, DRAMModel


@pytest.fixture(params=[DRAMModel, ArrayDRAMModel], ids=["list", "array"])
def Model(request):
    """Both DRAM implementations satisfy the same contract; the
    array-backed one additionally vectorizes large batch drains
    (covered separately below)."""
    return request.param


def make_dram(Model, **over):
    cfg = GPUConfig(
        dram_channels=2, dram_banks=2, dram_latency=100,
        dram_row_miss_penalty=50, dram_service=10, dram_jitter=0,
    ).with_(**over)
    return Model(cfg)


class TestDRAM:
    def test_first_access_is_row_miss(self, Model):
        d = make_dram(Model)
        done = d.access(0, now=0)
        assert done == 150  # base + row-miss penalty
        assert d.row_hits == 0

    def test_same_row_hit(self, Model):
        d = make_dram(Model)
        d.access(0, now=0)
        # Same bank (line + num_banks) and same 2 KiB row: a row hit.
        done = d.access(d.num_banks * 128, now=1000)
        assert done == 1000 + 100
        assert d.row_hits == 1

    def test_adjacent_lines_interleave_across_banks(self, Model):
        d = make_dram(Model)
        d.access(0, now=0)
        d.access(128, now=0)  # next line -> next bank -> closed row
        assert d.row_hits == 0

    def test_row_conflict_pays_penalty(self, Model):
        d = make_dram(Model)
        d.access(0, now=0)
        nb = d.num_banks
        done = d.access(2048 * nb, now=1000)  # same bank, different row
        assert done == 1000 + 150

    def test_bank_queueing_delay(self, Model):
        d = make_dram(Model)
        d.access(0, now=0)  # occupies bank until t=10
        done = d.access(0, now=2)  # same bank: waits until 10
        assert done == 10 + 100
        assert d.total_queue_cycles == 8

    def test_different_banks_no_queueing(self, Model):
        d = make_dram(Model)
        d.access(0, now=0)
        done = d.access(128, now=0)  # adjacent line -> next bank
        assert done == 150
        assert d.total_queue_cycles == 0

    def test_bank_mapping_spreads_lines(self, Model):
        d = make_dram(Model)
        banks = {(a >> d.line_shift) % d.num_banks for a in range(0, 512, 128)}
        assert len(banks) == 4

    def test_stats(self, Model):
        d = make_dram(Model)
        d.access(0, 0)
        d.access(128, 0)
        assert d.requests == 2
        assert 0 <= d.row_hit_rate <= 1
        assert d.mean_queue_delay >= 0

    def test_reset(self, Model):
        d = make_dram(Model)
        d.access(0, 0)
        d.reset()
        assert d.requests == 0
        assert list(d.free_at) == [0] * d.num_banks
        # row closed: pays the miss penalty again
        assert d.access(0, 0) == 150

    def test_jitter_bounded_and_deterministic(self, Model):
        d = make_dram(Model, dram_jitter=9)
        lats = [d.access(0, now=10_000 * (i + 1)) - 10_000 * (i + 1) for i in range(50)]
        base = [l - 150 if i == 0 else l - 100 for i, l in enumerate(lats)]
        # Jitter stays within [0, 9) on top of the deterministic latency.
        d2 = make_dram(Model, dram_jitter=9)
        lats2 = [d2.access(0, now=10_000 * (i + 1)) - 10_000 * (i + 1) for i in range(50)]
        assert lats == lats2  # deterministic
        assert max(lats) - min(lats[1:]) < 60  # bounded variation

    def test_bank_serializes_under_load(self, Model):
        d = make_dram(Model)
        for i in range(50):
            d.access(0, now=0)  # hammer one bank
        # Each request occupies the bank for `service` cycles.
        assert d.free_at[(0 >> d.line_shift) % d.num_banks] == 50 * 10
        assert d.total_queue_cycles == sum(10 * i for i in range(50))


class TestArrayDRAMVectorDrain:
    """The vectorized batch drain of :class:`ArrayDRAMModel` must be
    bit-identical to the scalar drain — bank state, statistics, jitter
    stream and completion time — for any batch and any ``now``."""

    @settings(max_examples=60, deadline=None)
    @given(
        addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=80),
        now=st.integers(0, 10_000),
        jitter=st.sampled_from([0, 9]),
        channels=st.sampled_from([2, 3]),   # mask and modulo bank paths
    )
    def test_vector_drain_matches_scalar(self, addrs, now, jitter, channels):
        cfg = GPUConfig(
            dram_channels=channels, dram_banks=4, dram_latency=100,
            dram_row_miss_penalty=50, dram_service=10, dram_jitter=jitter,
        )
        scalar = DRAMModel(cfg)
        vector = ArrayDRAMModel(cfg, vector_threshold=1)  # always vector
        assert vector.access_n(addrs, now) == scalar.access_n(addrs, now)
        assert list(vector.free_at) == list(scalar.free_at)
        assert list(vector.open_row) == list(scalar.open_row)
        assert (
            vector.requests, vector.row_hits, vector.total_queue_cycles,
            vector._jitter_state,
        ) == (
            scalar.requests, scalar.row_hits, scalar.total_queue_cycles,
            scalar._jitter_state,
        )
        assert vector.vector_batches == 1

    @settings(max_examples=30, deadline=None)
    @given(
        batches=st.lists(
            st.tuples(
                st.lists(st.integers(0, 1 << 18), min_size=1, max_size=20),
                st.integers(0, 200),
            ),
            min_size=1, max_size=10,
        )
    )
    def test_interleaved_batches_keep_jitter_stream(self, batches):
        # Alternating scalar access() and vectorized access_n() calls
        # on one model must walk the same LCG stream and bank state as
        # a purely scalar model.
        cfg = GPUConfig(dram_channels=2, dram_banks=2)
        scalar = DRAMModel(cfg)
        mixed = ArrayDRAMModel(cfg, vector_threshold=1)
        now = 0
        for addrs, dt in batches:
            now += dt
            assert mixed.access(addrs[0], now) == scalar.access(addrs[0], now)
            assert mixed.access_n(addrs, now) == scalar.access_n(addrs, now)
        assert mixed._jitter_state == scalar._jitter_state
        assert list(mixed.free_at) == list(scalar.free_at)

    def test_threshold_dispatch(self):
        cfg = GPUConfig(dram_channels=2, dram_banks=2)
        d = ArrayDRAMModel(cfg)   # default threshold: warp batches scalar
        d.access_n(list(range(0, 32 * 128, 128)), 0)
        assert d.vector_batches == 0
        big = list(range(0, d.vector_threshold * 128, 128))
        d.access_n(big, 0)
        assert d.vector_batches == 1

    def test_empty_batch_is_a_no_op(self):
        cfg = GPUConfig(dram_channels=2, dram_banks=2)
        d = ArrayDRAMModel(cfg, vector_threshold=0)
        state_before = (list(d.free_at), d.requests, d._jitter_state)
        assert d._access_n_vector([], 0) == 0
        assert (list(d.free_at), d.requests, d._jitter_state) == state_before

    def test_lcg_table_growth(self):
        # Batches beyond the initial table size must grow the closed
        # form tables and stay bit-identical.
        cfg = GPUConfig(dram_channels=2, dram_banks=2)
        scalar = DRAMModel(cfg)
        vector = ArrayDRAMModel(cfg, vector_threshold=1)
        addrs = list(range(0, 300 * 128, 128))
        assert vector.access_n(addrs, 5) == scalar.access_n(addrs, 5)
        assert vector._jitter_state == scalar._jitter_state

    def test_reset_mutates_buffers_in_place(self):
        cfg = GPUConfig(dram_channels=2, dram_banks=2)
        d = ArrayDRAMModel(cfg)
        free, rows = d.free_at, d.open_row
        d.access_n(list(range(0, 64 * 128, 128)), 0)
        d.reset()
        assert d.free_at is free and d.open_row is rows
        assert list(free) == [0] * d.num_banks
        assert list(rows) == [-1] * d.num_banks
        assert d.vector_batches == 0
