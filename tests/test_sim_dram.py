"""Tests for the DRAM model."""

import pytest

from repro.config import GPUConfig
from repro.sim.dram import DRAMModel


def small_dram(**over):
    cfg = GPUConfig(
        dram_channels=2, dram_banks=2, dram_latency=100,
        dram_row_miss_penalty=50, dram_service=10, dram_jitter=0,
    ).with_(**over)
    return DRAMModel(cfg)


class TestDRAM:
    def test_first_access_is_row_miss(self):
        d = small_dram()
        done = d.access(0, now=0)
        assert done == 150  # base + row-miss penalty
        assert d.row_hits == 0

    def test_same_row_hit(self):
        d = small_dram()
        d.access(0, now=0)
        # Same bank (line + num_banks) and same 2 KiB row: a row hit.
        done = d.access(d.num_banks * 128, now=1000)
        assert done == 1000 + 100
        assert d.row_hits == 1

    def test_adjacent_lines_interleave_across_banks(self):
        d = small_dram()
        d.access(0, now=0)
        d.access(128, now=0)  # next line -> next bank -> closed row
        assert d.row_hits == 0

    def test_row_conflict_pays_penalty(self):
        d = small_dram()
        d.access(0, now=0)
        nb = d.num_banks
        done = d.access(2048 * nb, now=1000)  # same bank, different row
        assert done == 1000 + 150

    def test_bank_queueing_delay(self):
        d = small_dram()
        d.access(0, now=0)  # occupies bank until t=10
        done = d.access(0, now=2)  # same bank: waits until 10
        assert done == 10 + 100
        assert d.total_queue_cycles == 8

    def test_different_banks_no_queueing(self):
        d = small_dram()
        d.access(0, now=0)
        done = d.access(128, now=0)  # adjacent line -> next bank
        assert done == 150
        assert d.total_queue_cycles == 0

    def test_bank_mapping_spreads_lines(self):
        d = small_dram()
        banks = {(a >> d.line_shift) % d.num_banks for a in range(0, 512, 128)}
        assert len(banks) == 4

    def test_stats(self):
        d = small_dram()
        d.access(0, 0)
        d.access(128, 0)
        assert d.requests == 2
        assert 0 <= d.row_hit_rate <= 1
        assert d.mean_queue_delay >= 0

    def test_reset(self):
        d = small_dram()
        d.access(0, 0)
        d.reset()
        assert d.requests == 0
        assert d.free_at == [0] * d.num_banks
        # row closed: pays the miss penalty again
        assert d.access(0, 0) == 150

    def test_jitter_bounded_and_deterministic(self):
        d = small_dram(dram_jitter=9)
        lats = [d.access(0, now=10_000 * (i + 1)) - 10_000 * (i + 1) for i in range(50)]
        base = [l - 150 if i == 0 else l - 100 for i, l in enumerate(lats)]
        # Jitter stays within [0, 9) on top of the deterministic latency.
        d2 = small_dram(dram_jitter=9)
        lats2 = [d2.access(0, now=10_000 * (i + 1)) - 10_000 * (i + 1) for i in range(50)]
        assert lats == lats2  # deterministic
        assert max(lats) - min(lats[1:]) < 60  # bounded variation

    def test_bank_serializes_under_load(self):
        d = small_dram()
        for i in range(50):
            d.access(0, now=0)  # hammer one bank
        # Each request occupies the bank for `service` cycles.
        assert d.free_at[(0 >> d.line_shift) % d.num_banks] == 50 * 10
        assert d.total_queue_cycles == sum(10 * i for i in range(50))
