"""Equivalence of the compact (interned, segment-batched) engine and
the per-instruction reference engine.

The compact engine's entire claim is *bit-identical results, faster* —
every test here compares the two engines on the same inputs and demands
exact equality of every observable ``LaunchResult`` field, recorded
sampling unit (IPC and BBV), and sampler callback stream.  The property
tests drive randomly shaped launches with random ``FixedUnitRecorder``
unit sizes so unit boundaries land mid-segment, which forces the
segment-batching path to split segments exactly where the reference
engine would have issued the boundary instruction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.sim import FixedUnitRecorder, GPUSimulator, SimCounters
from repro.trace import BlockTrace, LaunchTrace, WarpTrace
from repro.trace.instruction import OP_ALU, OP_MEM_GLOBAL
from repro.workloads import get_workload
from repro.workloads.base import LaunchSpec, Segment, build_kernel

from tests.conftest import make_manual_launch, make_uniform_kernel


def result_fingerprint(result, recorder=None):
    """Every observable field of a LaunchResult (+ recorded units)."""
    fp = (
        result.issued_warp_insts,
        result.wall_cycles,
        tuple(result.per_sm_issued),
        tuple(result.per_sm_busy_cycles),
        result.skipped_warp_insts,
        result.extra_cycles,
    )
    if recorder is not None:
        fp += (
            tuple(
                (u.start_cycle, u.end_cycle, u.insts,
                 None if u.bbv is None else tuple(u.bbv))
                for u in recorder.units
            ),
        )
    return fp


def run_both(launch, gpu=None, unit_insts=None, num_bbs=None):
    """Run both engines on ``launch``; return their fingerprints."""
    fps = []
    for engine in ("reference", "compact"):
        sim = GPUSimulator(gpu or GPUConfig(), engine=engine)
        recorder = None
        if unit_insts is not None:
            recorder = FixedUnitRecorder(
                unit_insts=unit_insts,
                num_bbs=num_bbs or getattr(launch, "num_bbs", 1),
            )
        result = sim.run_launch(launch, recorder=recorder)
        fps.append(result_fingerprint(result, recorder))
    return fps


class TestRegistryKernelEquivalence:
    """Acceptance: identical LaunchResult fields (issued insts, wall
    cycles, per-SM arrays, unit IPCs/BBVs) on >= 3 registry kernels."""

    @pytest.mark.parametrize("name", ["bfs", "hotspot", "stream"])
    def test_kernel_equivalent_with_units(self, name):
        kernel = get_workload(name, scale=0.0625)
        for launch in kernel.launches[:2]:
            ref, compact = run_both(
                launch, unit_insts=997, num_bbs=launch.num_bbs
            )
            assert ref == compact

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["black", "kmeans", "lbm"])
    def test_kernel_equivalent_plain(self, name):
        kernel = get_workload(name, scale=0.125)
        ref, compact = run_both(kernel.launches[0])
        assert ref == compact


@st.composite
def random_launches(draw):
    """Small launches diverse in block count, trace length, and memory
    intensity — enough shape variety to hit every issue-loop branch."""
    num_blocks = draw(st.integers(min_value=1, max_value=20))
    insts = draw(st.integers(min_value=8, max_value=48))
    mem_ratio = draw(st.sampled_from([0.0, 0.05, 0.2, 0.5]))
    warps = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    spec = LaunchSpec(
        segments=(
            Segment(count=num_blocks, insts_per_warp=insts,
                    mem_ratio=mem_ratio),
        ),
        warps_per_block=warps,
    )
    kernel = build_kernel("prop", "test", "regular", [spec], seed)
    return kernel.launches[0]


class TestUnitBoundaryProperty:
    """A unit boundary landing mid-segment must split the segment: the
    compact engine's per-unit IPCs and BBVs must match the reference
    per-instruction path exactly, for any unit size."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        launch=random_launches(),
        unit_insts=st.integers(min_value=1, max_value=64),
        num_sms=st.sampled_from([1, 2, 4]),
        scheduler=st.sampled_from(["oldest", "lrr"]),
    )
    def test_units_identical(self, launch, unit_insts, num_sms, scheduler):
        gpu = GPUConfig(num_sms=num_sms, warps_per_sm=8, scheduler=scheduler)
        ref, compact = run_both(
            launch, gpu=gpu, unit_insts=unit_insts, num_bbs=launch.num_bbs
        )
        assert ref == compact


class TestDegenerateTraces:
    """Unvalidated traces may carry a DRAM opcode with zero transactions
    (static stall 0) — the one case that can break the compact engine's
    saturated-prefix reasoning, so it must be detected and excluded."""

    @staticmethod
    def _degenerate_launch(num_blocks=6, n=24):
        def factory(tb_id: int) -> BlockTrace:
            op = np.full(n, OP_ALU, dtype=np.uint8)
            op[::3] = OP_MEM_GLOBAL
            mem_req = np.zeros(n, dtype=np.uint8)
            # Half the DRAM ops carry a real transaction, half carry
            # none (degenerate: they stall 0 cycles statically).
            mem_req[::6] = 1
            addr = np.arange(n, dtype=np.int64) * 128 + tb_id * 4096
            warps = [
                WarpTrace.from_columns(
                    op,
                    np.full(n, 32, dtype=np.uint8),
                    mem_req,
                    addr,
                    np.full(n, 128, dtype=np.int64),
                    np.zeros(n, dtype=np.uint16),
                    validate=False,
                )
                for _ in range(2)
            ]
            return BlockTrace(tb_id, warps)

        return LaunchTrace(
            kernel_name="degenerate",
            launch_id=0,
            num_blocks=num_blocks,
            warps_per_block=2,
            factory=factory,
            num_bbs=1,
        )

    def test_zero_stall_mem_ops_equivalent(self):
        launch = self._degenerate_launch()
        gpu = GPUConfig(num_sms=2, warps_per_sm=8)
        ref, compact = run_both(launch, gpu=gpu, unit_insts=7)
        assert ref == compact

    def test_zero_stall_dense_blocks_equivalent(self):
        launch = self._degenerate_launch(num_blocks=20, n=40)
        ref, compact = run_both(launch, gpu=GPUConfig(num_sms=3))
        assert ref == compact


class TestIdleSmBusyCycles:
    """SMs that never issued an instruction must report 0 busy cycles,
    not the phantom ``last + 1 = 1`` the per-SM IPC sum used to see."""

    @pytest.mark.parametrize("engine", ["reference", "compact"])
    def test_idle_sms_report_zero(self, engine):
        launch = make_manual_launch([20, 20])
        result = GPUSimulator(
            GPUConfig(num_sms=14), engine=engine
        ).run_launch(launch)
        for issued, busy in zip(result.per_sm_issued, result.per_sm_busy_cycles):
            if issued == 0:
                assert busy == 0
            else:
                assert busy > 0
        assert result.per_sm_busy_cycles.count(0) == 12


class TestSimCounters:
    def test_compact_engine_attaches_counters(self):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=32)
        result = GPUSimulator(GPUConfig(num_sms=2)).run_launch(
            kernel.launches[0]
        )
        c = result.counters
        assert isinstance(c, SimCounters)
        assert c.events_popped > 0
        assert c.heap_pushes > 0
        # Identical blocks: every dispatch after the first hits the
        # interning cache.
        assert c.interning_hits > 0
        assert c.interning_misses >= 1
        d = c.as_dict()
        assert d["events_popped"] == c.events_popped

    def test_reference_engine_has_no_counters(self):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=8)
        result = GPUSimulator(
            GPUConfig(num_sms=2), engine="reference"
        ).run_launch(kernel.launches[0])
        assert result.counters is None

    def test_segment_batching_engages_when_unsaturated(self):
        # One block of one warp per SM: a lone resident warp is the
        # canonical provably-equivalent segment-batching case.
        kernel = make_uniform_kernel(
            num_launches=1, blocks_per_launch=2, warps_per_block=1,
            insts_per_warp=64, mem_ratio=0.05,
        )
        result = GPUSimulator(GPUConfig(num_sms=2)).run_launch(
            kernel.launches[0]
        )
        c = result.counters
        assert c.segment_hits > 0
        assert c.segment_insts >= 2 * c.segment_hits
