"""Edge-case tests for the timing simulator."""

import pytest

from repro.config import GPUConfig
from repro.sim import FixedUnitRecorder, GPUSimulator

from tests.conftest import make_manual_launch, make_uniform_kernel


class TestDegenerateConfigurations:
    def test_single_sm(self):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=16)
        result = GPUSimulator(GPUConfig(num_sms=1)).run_launch(
            kernel.launches[0]
        )
        assert result.machine_ipc <= 1.0  # single-issue SM
        assert result.issued_warp_insts > 0

    def test_one_warp_per_sm(self):
        kernel = make_uniform_kernel(
            num_launches=1, blocks_per_launch=8, warps_per_block=1
        )
        gpu = GPUConfig(num_sms=2, warps_per_sm=1)
        result = GPUSimulator(gpu).run_launch(kernel.launches[0])
        # One warp per SM: every stall is exposed, IPC far below peak.
        assert result.machine_ipc < 2.0

    def test_fewer_blocks_than_sms(self):
        launch = make_manual_launch([20, 20])
        result = GPUSimulator(GPUConfig(num_sms=14)).run_launch(launch)
        assert result.issued_warp_insts == 40
        # Only the SMs that got blocks issue anything.
        busy = sum(1 for i in result.per_sm_issued if i)
        assert busy == 2

    def test_block_with_single_instruction_warps(self):
        launch = make_manual_launch([1, 1, 1], mem_every=0)
        result = GPUSimulator(GPUConfig(num_sms=2)).run_launch(launch)
        assert result.issued_warp_insts == 3

    def test_block_of_pure_memory_instructions(self):
        launch = make_manual_launch([12], mem_every=1)
        result = GPUSimulator(GPUConfig(num_sms=2)).run_launch(launch)
        assert result.issued_warp_insts == 12
        assert result.mem_stats["dram_requests"] > 0

    def test_huge_occupancy_cap(self):
        kernel = make_uniform_kernel(
            num_launches=1, blocks_per_launch=64, warps_per_block=1
        )
        gpu = GPUConfig(num_sms=2, warps_per_sm=64, max_blocks_per_sm=8)
        result = GPUSimulator(gpu).run_launch(kernel.launches[0])
        # Block cap (8) limits occupancy even with plenty of warp slots.
        assert result.issued_warp_insts > 0


class TestRecorderEdgeCases:
    def test_unit_larger_than_launch(self):
        launch = make_manual_launch([30])
        rec = FixedUnitRecorder(unit_insts=10_000, num_bbs=1)
        GPUSimulator(GPUConfig(num_sms=2)).run_launch(launch, recorder=rec)
        assert len(rec.units) == 1
        assert rec.units[0].insts == 30

    def test_unit_of_one_instruction(self):
        launch = make_manual_launch([5])
        rec = FixedUnitRecorder(unit_insts=1, num_bbs=1)
        GPUSimulator(GPUConfig(num_sms=2)).run_launch(launch, recorder=rec)
        assert len(rec.units) == 5
        assert all(u.insts == 1 for u in rec.units)

    def test_memory_reset_between_launches_isolated(self):
        """A cold cache at each launch start: the first access of every
        launch misses."""
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=32)
        sim = GPUSimulator(GPUConfig(num_sms=2, warps_per_sm=8))
        sim.run_launch(kernel.launches[0])
        stats_before = sim.mem.stats()
        sim.run_launch(kernel.launches[1])
        # reset_memory=True zeroed the counters at the second launch.
        assert sim.mem.stats()["dram_requests"] <= stats_before["dram_requests"] * 1.2


class TestResultProperties:
    def test_est_ipc_equals_machine_ipc_without_sampler(self):
        launch = make_manual_launch([40, 40])
        result = GPUSimulator(GPUConfig(num_sms=2)).run_launch(launch)
        assert result.est_ipc == pytest.approx(
            result.machine_ipc, rel=0.02
        )
        assert result.sampled_fraction == 1.0
        assert result.est_cycles == result.wall_cycles
