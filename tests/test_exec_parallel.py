"""Determinism of the batch execution engine.

The contract (``repro.exec.engine``): results of a parallel run are
bit-identical to the serial run — same estimates, same sample sizes,
same per-launch results — for any job count.  Property-tested over
randomly shaped kernels and ``jobs ∈ {1, 2, 4}``.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import run_full
from repro.config import GPUConfig
from repro.core.pipeline import run_tbpoint
from repro.exec import ExecutionConfig, parallel_map
from repro.workloads import get_workload
from repro.workloads.base import LaunchSpec, Segment, build_kernel

from tests.conftest import make_uniform_kernel

GPU = GPUConfig(num_sms=2, warps_per_sm=8)

JOBS = st.sampled_from([1, 2, 4])


@st.composite
def small_kernels(draw):
    """Tiny but shape-diverse kernels: varying launch counts, block
    counts, instruction mixes, and seeds."""
    num_launches = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    specs = []
    for _ in range(num_launches):
        blocks = draw(st.integers(min_value=8, max_value=24))
        insts = draw(st.sampled_from([16, 24, 32]))
        mem_ratio = draw(st.sampled_from([0.05, 0.1, 0.2]))
        specs.append(
            LaunchSpec(
                segments=(
                    Segment(
                        count=blocks,
                        insts_per_warp=insts,
                        mem_ratio=mem_ratio,
                    ),
                ),
                warps_per_block=2,
            )
        )
    return build_kernel("prop", "test", "regular", specs, seed)


def _fingerprint(tbp):
    """Everything observable about a TBPoint run, for exact comparison."""
    return (
        tbp.overall_ipc,
        tbp.sample_size,
        tbp.inter_skipped_insts,
        tbp.intra_skipped_insts,
        tuple(sorted(tbp.rep_results)),
        tuple(
            (lid, r.issued_warp_insts, r.wall_cycles, r.skipped_warp_insts,
             r.extra_cycles)
            for lid, r in sorted(tbp.rep_results.items())
        ),
        tuple(
            (e.launch_id, e.warp_insts, e.est_cycles, e.simulated_insts)
            for e in tbp.estimate.launches
        ),
    )


@pytest.mark.slow
class TestParallelDeterminism:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(kernel=small_kernels(), jobs=JOBS)
    def test_tbpoint_parallel_matches_serial(self, kernel, jobs):
        serial = run_tbpoint(
            kernel, GPU, exec_config=ExecutionConfig(jobs=1, use_cache=False)
        )
        par = run_tbpoint(
            kernel, GPU,
            exec_config=ExecutionConfig(jobs=jobs, use_cache=False),
        )
        assert _fingerprint(par) == _fingerprint(serial)

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(kernel=small_kernels(), jobs=JOBS)
    def test_full_parallel_matches_serial(self, kernel, jobs):
        serial = run_full(
            kernel, GPU, exec_config=ExecutionConfig(jobs=1, use_cache=False)
        )
        par = run_full(
            kernel, GPU,
            exec_config=ExecutionConfig(jobs=jobs, use_cache=False),
        )
        assert par.overall_ipc == serial.overall_ipc
        assert par.total_cycles == serial.total_cycles
        assert len(par.launch_results) == len(serial.launch_results)
        for a, b in zip(par.launch_results, serial.launch_results):
            assert (a.issued_warp_insts, a.wall_cycles) == (
                b.issued_warp_insts, b.wall_cycles
            )


class TestWorkloadTracesAreParallelizable:
    """The fan-out only engages when tasks pickle; registry-built traces
    must stay picklable or parallelism silently degrades to serial."""

    def test_workload_trace_picklable(self):
        kernel = get_workload("stream", scale=0.0625)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.num_launches == kernel.num_launches
        a = clone.launches[0].block(0)
        b = kernel.launches[0].block(0)
        assert a.warps[0].op.tolist() == b.warps[0].op.tolist()

    def test_uniform_kernel_picklable(self):
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=16)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.launches[1].num_blocks == 16


class TestDegradeToSerial:
    """parallel_map must not spawn a pool that cannot pay for itself
    (jobs <= 1, too few items to amortize the spawn) — but an
    *explicit* jobs request is honoured exactly, even past the
    apparent CPU count: cgroup quotas make ``os.cpu_count()``
    under-report, and silently rewriting ``--jobs`` was the gating bug
    that forced every run on such hosts to serial."""

    def test_explicit_jobs_honored_past_cpu_count(self, monkeypatch):
        import repro.exec.engine as engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 1)
        meta: dict = {}
        out = parallel_map(_square, list(range(10)), jobs=4, meta=meta)
        assert out == [i * i for i in range(10)]
        # The request must not be rewritten to the CPU count; either
        # the pool spawned with the requested width, or pools are
        # genuinely unavailable in this sandbox.
        if meta["path"] == "parallel":
            assert meta["workers"] == 4
        else:
            assert meta["reason"] == "process pool unavailable"

    def test_effective_jobs_property(self, monkeypatch):
        import repro.exec.engine as engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 2)
        # Explicit requests pass through untouched; only the automatic
        # request (0) is sized to the machine.
        assert ExecutionConfig(jobs=8).effective_jobs == 8
        assert ExecutionConfig(jobs=0).effective_jobs == 2
        assert ExecutionConfig(jobs=1).effective_jobs == 1

    def test_small_item_count_stays_serial(self, monkeypatch):
        import repro.exec.engine as engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 8)
        meta: dict = {}
        items = list(range(engine.MIN_PARALLEL_ITEMS - 1))
        assert parallel_map(_square, items, jobs=4, meta=meta) == [
            i * i for i in items
        ]
        assert meta["path"] == "serial"
        assert "min_items" in meta["reason"]

    def test_min_items_floor_is_caller_tunable(self):
        # Launch-level fan-out passes min_items=2 because one launch
        # simulation dwarfs the pool spawn cost; the floor must be
        # honoured below MIN_PARALLEL_ITEMS.
        meta: dict = {}
        out = parallel_map(_square, [2, 3], jobs=2, meta=meta, min_items=2)
        assert out == [4, 9]
        if meta["path"] == "serial":  # pool may be unavailable in sandboxes
            assert meta["reason"] == "process pool unavailable"
        else:
            assert meta["workers"] == 2

    def test_meta_records_unpicklable_reason(self, monkeypatch):
        import repro.exec.engine as engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 4)
        meta: dict = {}
        fn = lambda x: x + 1  # noqa: E731 — deliberately unpicklable
        parallel_map(fn, list(range(10)), jobs=4, meta=meta)
        assert meta["path"] == "serial"
        assert meta["reason"] == "fn or first item not picklable"

    def test_parallel_path_records_meta(self, monkeypatch):
        import repro.exec.engine as engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 2)
        meta: dict = {}
        out = parallel_map(_square, list(range(6)), jobs=2, meta=meta)
        if meta["path"] == "parallel":  # pool may be unavailable in sandboxes
            assert meta["workers"] == 2
            assert meta["reason"] is None
        assert out == [i * i for i in range(6)]

    def test_run_tbpoint_records_exec_meta(self):
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=12)
        tbp = run_tbpoint(
            kernel, GPU, exec_config=ExecutionConfig(jobs=1, use_cache=False)
        )
        assert tbp.exec_meta["path"] == "serial"
        assert tbp.exec_meta["workers"] == 1

    def test_run_full_records_exec_meta(self):
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=12)
        full = run_full(
            kernel, GPU, exec_config=ExecutionConfig(jobs=1, use_cache=False)
        )
        assert full.exec_meta["path"] == "serial"


class TestLaunchFanOutEngages:
    """Regression for the gating bug (BENCH_exec.json: ``--jobs 4``
    over 8 launches reported ``exec_reason: "jobs=1, 8 launch(es)"``):
    with jobs > 1 and at least two launches to simulate, the launch
    fan-out must actually take the parallel path."""

    @staticmethod
    def _assert_parallel(meta: dict, workers: int) -> None:
        if meta["path"] == "parallel":
            assert meta["workers"] == workers
            assert meta["reason"] is None
        else:  # pool may be unavailable in sandboxes — but never a cap
            assert meta["reason"] == "process pool unavailable"

    def test_run_full_parallel_engages_for_two_launches(self):
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=12)
        full = run_full(
            kernel, GPU, exec_config=ExecutionConfig(jobs=2, use_cache=False)
        )
        self._assert_parallel(full.exec_meta, workers=2)

    def test_run_tbpoint_parallel_engages_for_multi_reps(self):
        # use_inter=False keeps every launch a representative (identical
        # launches would otherwise cluster into one, which is correctly
        # serial); 8 launches with --jobs 4 is exactly the recorded
        # BENCH_exec.json failure shape.
        kernel = make_uniform_kernel(num_launches=8, blocks_per_launch=12)
        tbp = run_tbpoint(
            kernel, GPU, use_inter=False,
            exec_config=ExecutionConfig(jobs=4, use_cache=False),
        )
        assert len(tbp.rep_results) == 8
        self._assert_parallel(tbp.exec_meta, workers=4)


class TestWarmWorkerSimulator:
    """Per-worker simulator reuse (``repro.sim.worker``): the pool
    initializer builds one simulator per worker; tasks reuse it when
    the (config, engine, front end) triple matches and rebuild it
    otherwise.  Reuse must be invisible in results."""

    def test_get_simulator_reuses_warm_instance(self):
        import repro.sim.worker as worker

        worker.init_worker(GPU)
        first = worker.get_simulator(GPU)
        assert first is worker.get_simulator(GPU)

    def test_get_simulator_rebuilds_on_config_change(self):
        import repro.sim.worker as worker

        worker.init_worker(GPU)
        warm = worker.get_simulator(GPU)
        other = worker.get_simulator(GPU.with_(num_sms=3))
        assert other is not warm
        assert other.config.num_sms == 3
        assert worker.get_simulator(GPU.with_(num_sms=3)) is other

    def test_get_simulator_rebuilds_on_engine_or_front_end_change(self):
        import repro.sim.worker as worker

        worker.init_worker(GPU)
        warm = worker.get_simulator(GPU)
        assert worker.get_simulator(GPU, engine="reference") is not warm
        assert worker.get_simulator(GPU, mem_front_end="vector") is not warm

    def test_registry_keeps_multiple_triples_resident(self):
        """PR 9: long-lived serve workers alternate between request
        mixes; the registry must not thrash on alternation."""
        import repro.sim.worker as worker

        worker.init_worker(GPU)
        compact = worker.get_simulator(GPU)
        reference = worker.get_simulator(GPU, engine="reference")
        # Alternating requests keep hitting their own resident sim.
        assert worker.get_simulator(GPU) is compact
        assert worker.get_simulator(GPU, engine="reference") is reference
        assert worker.warm_simulator_count() == 2

    def test_registry_evicts_oldest_past_the_bound(self):
        import repro.sim.worker as worker

        worker.init_worker(GPU)
        oldest = worker.get_simulator(GPU)
        for num_sms in range(3, 3 + worker.MAX_WARM_SIMULATORS):
            worker.get_simulator(GPU.with_(num_sms=num_sms))
        assert worker.warm_simulator_count() == worker.MAX_WARM_SIMULATORS
        assert worker.get_simulator(GPU) is not oldest  # evicted, rebuilt

    def test_warm_simulator_results_bit_identical_to_fresh(self):
        import repro.sim.worker as worker

        kernel = make_uniform_kernel(num_launches=3, blocks_per_launch=12)
        worker.init_worker(GPU)
        sim = worker.get_simulator(GPU)
        from repro.sim.gpu import GPUSimulator

        warm = [sim.run_launch(l) for l in kernel.launches]
        fresh = [GPUSimulator(GPU).run_launch(l) for l in kernel.launches]
        for a, b in zip(warm, fresh):
            assert (a.issued_warp_insts, a.wall_cycles) == (
                b.issued_warp_insts, b.wall_cycles
            )


class TestParallelMap:
    def test_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [i * i for i in items]

    def test_serial_path_identical(self):
        items = list(range(7))
        assert parallel_map(_square, items, jobs=1) == parallel_map(
            _square, items, jobs=3
        )

    def test_unpicklable_falls_back_to_serial(self):
        items = [1, 2, 3]
        fn = lambda x: x + 1  # noqa: E731 — deliberately unpicklable
        assert parallel_map(fn, items, jobs=4) == [2, 3, 4]

    def test_single_item_stays_in_process(self):
        assert parallel_map(_square, [5], jobs=8) == [25]


def _square(x: int) -> int:
    return x * x
