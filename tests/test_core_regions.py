"""Tests for homogeneous-region identification (Section IV-B1)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.epochs import EpochTable
from repro.core.regions import identify_regions


def make_table(stall_probs, variation=None, occupancy=4):
    """Epoch table with the given per-epoch stall probabilities."""
    stall = np.asarray(stall_probs, dtype=np.float64)
    n = len(stall)
    if variation is None:
        variation = np.zeros(n)
    counts = np.full(n, occupancy, dtype=np.int64)
    return EpochTable(
        occupancy=occupancy,
        starts=np.arange(n, dtype=np.int64) * occupancy,
        counts=counts,
        stall_probability=stall,
        variation_factor=np.asarray(variation, dtype=np.float64),
    )


class TestIdentifyRegions:
    def test_uniform_epochs_one_region(self):
        table = make_table([0.2] * 6)
        result = identify_regions(table)
        assert result.num_regions == 1
        region = result.regions[0]
        assert region.start_tb == 0
        assert region.end_tb == 24
        assert (result.region_of == 0).all()

    def test_two_phase_structure(self):
        """The Fig. 6 example: distinct stall probabilities split into
        two regions at the epoch boundary."""
        table = make_table([0.2, 0.2, 0.2, 0.05, 0.05, 0.05])
        result = identify_regions(table)
        assert result.num_regions == 2
        assert result.regions[0].end_tb == result.regions[1].start_tb == 12
        assert set(result.region_of[:12]) == {0}
        assert set(result.region_of[12:]) == {1}

    def test_outlier_epoch_excluded(self):
        """Fig. 6: epochs with outlier thread blocks get singleton
        clusters and are simulated as usual (region_of = -1)."""
        vf = [0.0, 0.0, 0.9, 0.0, 0.0, 0.0]
        table = make_table([0.2] * 6, variation=vf)
        result = identify_regions(table, SamplingConfig(variation_factor=0.3))
        # Epoch 2 breaks the run: regions [0,1] and [3..5].
        assert result.num_regions == 2
        assert (result.region_of[8:12] == -1).all()
        assert result.outlier_epochs[2]
        assert not result.outlier_epochs[1]

    def test_short_runs_unmarked(self):
        # Alternating epochs: every run has length 1 < min_region_epochs.
        table = make_table([0.05, 0.4] * 4)
        result = identify_regions(table, SamplingConfig(min_region_epochs=2))
        assert result.num_regions == 0
        assert (result.region_of == -1).all()

    def test_close_probabilities_merge(self):
        # 2% apart, threshold 0.2 (relative): same cluster, one region.
        table = make_table([0.20, 0.204, 0.199, 0.201])
        result = identify_regions(table)
        assert result.num_regions == 1

    def test_far_probabilities_split(self):
        table = make_table([0.1, 0.1, 0.5, 0.5])
        result = identify_regions(table)
        assert result.num_regions == 2

    def test_noncontiguous_same_cluster_distinct_regions(self):
        """Epochs with the same cluster separated by another phase form
        *separate* regions (regions are contiguous by definition)."""
        table = make_table([0.2, 0.2, 0.5, 0.5, 0.2, 0.2])
        result = identify_regions(table)
        assert result.num_regions == 3
        assert result.regions[0].cluster == result.regions[2].cluster
        assert result.regions[0].region_id != result.regions[2].region_id

    def test_rows_table_iii_format(self):
        table = make_table([0.2, 0.2, 0.05, 0.05])
        result = identify_regions(table)
        rows = result.rows()
        assert rows == [(0, 0, 7), (1, 8, 15)]

    def test_covered_blocks(self):
        vf = [0.0, 0.0, 0.9, 0.0]
        table = make_table([0.2] * 4, variation=vf)
        result = identify_regions(table, SamplingConfig(variation_factor=0.3))
        assert result.covered_blocks == 8  # only the first run of 2 epochs

    def test_single_epoch_launch(self):
        table = make_table([0.2])
        result = identify_regions(table)
        assert result.num_regions == 0  # shorter than min_region_epochs

    def test_region_ids_dense_and_match_region_of(self):
        table = make_table([0.1, 0.1, 0.4, 0.4, 0.1, 0.1, 0.7, 0.7])
        result = identify_regions(table)
        for region in result.regions:
            assert (
                result.region_of[region.start_tb : region.end_tb]
                == region.region_id
            ).all()
        assert [r.region_id for r in result.regions] == list(
            range(result.num_regions)
        )
