"""Property-based fuzzing of the RegionSampler state machine.

Drives the sampler with randomized but structurally valid event
sequences (dispatch in ID order, retire any resident block, units
bracketing block lifetimes) and checks the accounting invariants the
estimate composition relies on: every block is either simulated or
skipped exactly once, skipped instructions match the profile of skipped
blocks, and the cycle credit is finite and consistent.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SamplingConfig
from repro.core.intralaunch import RegionSampler


@st.composite
def sampler_scenario(draw):
    n_blocks = draw(st.integers(6, 60))
    occupancy = draw(st.integers(1, 6))
    # Random piecewise region labels (including unmarked stretches).
    n_segments = draw(st.integers(1, 4))
    labels = []
    for seg_id in range(n_segments):
        length = draw(st.integers(1, 30))
        region = draw(st.sampled_from([-1, seg_id]))
        labels.extend([region] * length)
    labels = (labels * 3)[:n_blocks]
    while len(labels) < n_blocks:
        labels.append(-1)
    insts = draw(
        st.lists(
            st.integers(10, 500), min_size=n_blocks, max_size=n_blocks
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return np.asarray(labels), np.asarray(insts), occupancy, seed


@settings(max_examples=60, deadline=None)
@given(sampler_scenario())
def test_accounting_invariants(scenario):
    labels, insts, occupancy, seed = scenario
    rng = np.random.default_rng(seed)
    sampler = RegionSampler(
        region_of=labels,
        block_warp_insts=insts,
        config=SamplingConfig(min_warm_units=2),
        occupancy=occupancy,
    )

    now = 0
    issued = 0
    resident: list[int] = []
    simulated: list[int] = []
    skipped: list[int] = []
    specified: int | None = None
    unit_start = (0, 0)
    next_tb = 0
    n_blocks = len(labels)

    while next_tb < n_blocks or resident:
        # Fill up to occupancy.
        while len(resident) < occupancy and next_tb < n_blocks:
            tb = next_tb
            next_tb += 1
            if sampler.on_dispatch(tb, now, issued):
                resident.append(tb)
                simulated.append(tb)
                if specified is None:
                    specified = tb
                    unit_start = (now, issued)
                    sampler.on_unit_start(now)
            else:
                skipped.append(tb)
        if not resident:
            break
        # Execute for a random while, then retire a random resident.
        dt = int(rng.integers(1, 50))
        now += dt
        issued += int(rng.integers(1, 200))
        victim = resident.pop(int(rng.integers(len(resident))))
        if victim == specified:
            t0, i0 = unit_start
            sampler.on_unit_complete(
                issued - i0, max(1, now - t0), now, issued
            )
            specified = None
        sampler.on_retire(victim, now, issued)
    sampler.finalize(now, issued)

    # Every block was handled exactly once.
    assert sorted(simulated + skipped) == list(range(n_blocks))
    # Skipped instruction accounting matches the profile.
    assert sampler.skipped_warp_insts == sum(int(insts[tb]) for tb in skipped)
    # Skipped blocks always carry a region and respect the tail reserve.
    for tb in skipped:
        assert labels[tb] >= 0
        assert tb + occupancy < n_blocks
        assert labels[tb + occupancy] == labels[tb]
    # Episode bookkeeping agrees with the totals.
    assert sum(e.skipped_blocks for e in sampler.episodes) == len(skipped)
    assert sum(e.skipped_insts for e in sampler.episodes) == (
        sampler.skipped_warp_insts
    )
    # The cycle credit is finite, and zero when nothing was skipped.
    assert np.isfinite(sampler.extra_cycles)
    if not skipped:
        assert sampler.extra_cycles == 0.0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(4, 40),
    occ=st.integers(1, 5),
)
def test_skippable_mask_structure(n, occ):
    """The tail reserve holds for any region layout."""
    labels = np.zeros(n, dtype=np.int64)
    sampler = RegionSampler(labels, np.full(n, 10), occupancy=occ)
    skippable = sampler._skippable
    # The last `occ` blocks are never skippable.
    assert not any(skippable[max(0, n - occ):])
    # Earlier blocks of the single region are skippable.
    if n > occ:
        assert all(skippable[: n - occ])
