"""Tests for the Fig. 5 Monte-Carlo IPC-variation study."""

import numpy as np
import pytest

from repro.model.montecarlo import (
    GAUSS_SPREAD,
    IPCVariation,
    ipc_variation,
    sample_stall_latencies,
)


class TestSampling:
    def test_shape_and_floor(self):
        ms = sample_stall_latencies(100.0, 4, 500, np.random.default_rng(0))
        assert ms.shape == (500, 4)
        assert (ms >= 1.0).all()

    def test_gaussian_spread_calibration(self):
        """sigma = 0.1 mu / 1.96 puts ~95% of draws within +-10% of mu."""
        ms = sample_stall_latencies(400.0, 1, 40_000, np.random.default_rng(1))
        within = np.abs(ms - 400.0) / 400.0 < GAUSS_SPREAD
        assert 0.94 < within.mean() < 0.96

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sample_stall_latencies(0.5, 4, 10)
        with pytest.raises(ValueError):
            sample_stall_latencies(100.0, 0, 10)


class TestIPCVariation:
    def test_lemma_41_holds(self):
        """Lemma 4.1: >95% of samples within 10% of the mean IPC, for
        the paper's example configuration."""
        for p, m, n in [(0.05, 100, 4), (0.1, 400, 4), (0.2, 200, 8)]:
            var = ipc_variation(p, m, n, rng=np.random.default_rng(42))
            assert var.fraction_within(0.10) > 0.95, var.label

    def test_label_format(self):
        var = ipc_variation(0.05, 100, 4, num_samples=10)
        assert var.label == "p0.05M100N4"

    def test_mean_close_to_nominal(self):
        from repro.model.markov import analytic_ipc

        var = ipc_variation(0.1, 200, 4, rng=np.random.default_rng(7))
        nominal = analytic_ipc(0.1, 200.0, 4)
        assert var.mean_ipc == pytest.approx(nominal, rel=0.02)

    def test_cdf_monotone_and_bounded(self):
        var = ipc_variation(0.1, 100, 4, rng=np.random.default_rng(3))
        grid = np.linspace(0, 0.5, 21)
        cdf = var.deviation_cdf(grid)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_deviation_nonnegative(self):
        var = ipc_variation(0.05, 400, 8, num_samples=100)
        assert (var.relative_deviation >= 0).all()

    def test_sample_count(self):
        var = ipc_variation(0.1, 100, 2, num_samples=123)
        assert len(var.ipcs) == 123
