"""Smoke tests: every example module imports and exposes a main()."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), path.name


def test_at_least_three_examples():
    assert len(EXAMPLES) >= 3
