"""Persistent profile cache: hits, misses, corruption, concurrency.

The cache must be an invisible accelerator — every failure mode
(truncation, garbage, checksum mismatch, version skew, racing writers)
degrades to "recompute the profile", never to a wrong answer or a crash.
"""

from __future__ import annotations

import json
import multiprocessing
import zipfile

import numpy as np
import pytest

from repro.exec.cache import (
    CACHE_FORMAT_VERSION,
    ProfileCache,
    cached_profile,
    default_cache_dir,
    kernel_cache_key,
    kernel_fingerprint,
)
from repro.exec.engine import ExecutionConfig
from repro.profiler import profile_kernel
from repro.workloads import get_workload

from tests.conftest import make_uniform_kernel


@pytest.fixture
def kernel():
    return make_uniform_kernel(num_launches=2, blocks_per_launch=24)


@pytest.fixture
def cache(tmp_path):
    return ProfileCache(tmp_path / "cache")


def assert_profiles_equal(a, b):
    assert a.kernel_name == b.kernel_name
    assert a.num_launches == b.num_launches
    for pa, pb in zip(a.launches, b.launches):
        assert pa.warps_per_block == pb.warps_per_block
        np.testing.assert_array_equal(pa.warp_insts, pb.warp_insts)
        np.testing.assert_array_equal(pa.thread_insts, pb.thread_insts)
        np.testing.assert_array_equal(pa.mem_requests, pb.mem_requests)


class TestKeys:
    def test_fingerprint_stable_across_builds(self):
        a = make_uniform_kernel(seed=3)
        b = make_uniform_kernel(seed=3)
        assert kernel_fingerprint(a) == kernel_fingerprint(b)

    def test_fingerprint_sensitive_to_content(self):
        a = make_uniform_kernel(seed=3)
        b = make_uniform_kernel(seed=4)
        assert kernel_fingerprint(a) != kernel_fingerprint(b)

    def test_provenance_key_cheap_and_stable(self):
        a = get_workload("stream", scale=0.0625)
        b = get_workload("stream", scale=0.0625)
        assert a.provenance is not None
        assert kernel_cache_key(a) == kernel_cache_key(b)

    def test_provenance_key_distinguishes_scales(self):
        a = get_workload("stream", scale=0.0625)
        b = get_workload("stream", scale=0.125)
        assert kernel_cache_key(a) != kernel_cache_key(b)


class TestHitMiss:
    def test_first_call_misses_second_hits(self, cache, kernel):
        first = cache.profile(kernel)
        assert (cache.session_hits, cache.session_misses) == (0, 1)
        second = cache.profile(kernel)
        assert (cache.session_hits, cache.session_misses) == (1, 1)
        assert_profiles_equal(first, second)

    def test_roundtrip_equals_direct_profile(self, cache, kernel):
        direct = profile_kernel(kernel)
        cache.profile(kernel)  # populate
        cached = cache.profile(kernel)  # load from disk
        assert_profiles_equal(direct, cached)

    def test_counters_persist_across_instances(self, tmp_path, kernel):
        root = tmp_path / "cache"
        ProfileCache(root).profile(kernel)
        other = ProfileCache(root)
        other.profile(kernel)
        info = other.info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["entries"] == 1
        assert info["bytes"] > 0

    def test_cached_profile_respects_use_cache(self, tmp_path, kernel):
        cfg = ExecutionConfig(use_cache=False, cache_dir=str(tmp_path))
        cached_profile(kernel, cfg)
        assert ProfileCache(tmp_path).entries() == []
        cfg = ExecutionConfig(use_cache=True, cache_dir=str(tmp_path))
        cached_profile(kernel, cfg)
        assert len(ProfileCache(tmp_path).entries()) == 1

    def test_clear_removes_entries_and_counters(self, cache, kernel):
        cache.profile(kernel)
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.info()["hits"] == 0

    def test_default_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TBPOINT_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestCorruption:
    """A damaged entry is discarded and recomputed — never trusted,
    never fatal."""

    def _entry(self, cache, kernel):
        key = kernel_cache_key(kernel)
        cache.profile(kernel)
        path = cache._entry_path(key)
        assert path.exists()
        return key, path

    def test_truncated_entry_recomputed(self, cache, kernel):
        key, path = self._entry(cache, kernel)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.get(key, kernel.name) is None
        assert not path.exists()  # bad entry evicted
        again = cache.profile(kernel)
        assert_profiles_equal(again, profile_kernel(kernel))

    def test_garbage_entry_recomputed(self, cache, kernel):
        key, path = self._entry(cache, kernel)
        path.write_bytes(b"this is not an npz archive")
        assert cache.get(key, kernel.name) is None
        assert cache.profile(kernel).num_launches == kernel.num_launches

    def test_checksum_mismatch_discarded(self, cache, kernel):
        key, path = self._entry(cache, kernel)
        # Rewrite the archive with tampered payload but the old checksum.
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name].copy() for name in data.files}
        arrays["warp_insts"] = arrays["warp_insts"] + 1
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        assert zipfile.is_zipfile(path)  # structurally valid, semantically bad
        assert cache.get(key, kernel.name) is None
        assert not path.exists()

    def test_format_version_skew_discarded(self, cache, kernel):
        key, path = self._entry(cache, kernel)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name].copy() for name in data.files}
        arrays["format_version"] = np.int64(CACHE_FORMAT_VERSION + 1)
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        assert cache.get(key, kernel.name) is None

    def test_missing_column_discarded(self, cache, kernel):
        key, path = self._entry(cache, kernel)
        with np.load(path, allow_pickle=False) as data:
            arrays = {
                name: data[name].copy()
                for name in data.files
                if name != "mem_requests"
            }
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        assert cache.get(key, kernel.name) is None

    def test_unwritable_cache_dir_degrades_to_uncached(self, kernel):
        """A cache location that cannot be created must cost nothing but
        the caching: the profile is still computed and returned."""
        cache = ProfileCache("/proc/nonexistent/tbpoint")
        profile = cache.profile(kernel)
        assert_profiles_equal(profile, profile_kernel(kernel))
        assert cache.entries() == []

    def test_corrupt_stats_json_tolerated(self, cache, kernel):
        cache.profile(kernel)
        cache.stats_path.write_text("{not json")
        assert cache.info()["hits"] == 0  # unreadable -> zeros, no crash
        cache.profile(kernel)  # bumping over garbage must not crash
        assert json.loads(cache.stats_path.read_text())["hits"] == 1

    def test_unreadable_entry_recomputed(self, cache, kernel):
        """An entry that exists but cannot be opened as a file (here: a
        directory squatting on its path — chmod is useless under root)
        is treated as a miss and the profile recomputed."""
        key, path = self._entry(cache, kernel)
        path.unlink()
        path.mkdir()  # open() on it raises IsADirectoryError
        assert cache.get(key, kernel.name) is None
        again = cache.profile(kernel)
        assert_profiles_equal(again, profile_kernel(kernel))


def _writer(root: str, seed: int) -> None:
    cache = ProfileCache(root)
    kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=24)
    for _ in range(3):
        cache.profile(kernel)


def _bumper(root: str, count: int) -> None:
    cache = ProfileCache(root)
    for _ in range(count):
        cache._bump(hits=1, misses=1)


@pytest.mark.slow
class TestConcurrentWriters:
    def test_racing_writers_leave_valid_entry(self, tmp_path, kernel):
        """Two processes repeatedly profiling the same trace must leave
        exactly one valid, loadable entry (atomic rename semantics)."""
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_writer, args=(root, i)) for i in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        cache = ProfileCache(root)
        assert len(cache.entries()) == 1
        loaded = cache.get(kernel_cache_key(kernel), kernel.name)
        assert loaded is not None
        assert_profiles_equal(loaded, profile_kernel(kernel))
        # No stray temp files left behind.
        assert not list(cache.profiles_dir.glob("*.tmp"))

    def test_bump_hammer_loses_no_increments(self, tmp_path):
        """The stats counters use read-modify-write; without the flock
        guard, racing processes clobber each other and counts come up
        short.  Four processes x 25 bumps each must land exactly."""
        root = str(tmp_path / "cache")
        nprocs, nbumps = 4, 25
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_bumper, args=(root, nbumps))
            for _ in range(nprocs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        info = ProfileCache(root).info()
        assert info["hits"] == nprocs * nbumps
        assert info["misses"] == nprocs * nbumps


class TestEntriesOrdering:
    def test_entries_sorted_regardless_of_creation_order(self, tmp_path):
        """``entries()`` is a determinism contract (DET005): ``glob``
        enumerates in filesystem order, so the listing must be sorted
        no matter in what order entries landed on disk."""
        cache = ProfileCache(str(tmp_path / "cache"))
        cache.profiles_dir.mkdir(parents=True, exist_ok=True)
        for stem in ("zz", "aa", "mm", "0b", "ZZ"):
            (cache.profiles_dir / f"{stem}.npz").write_bytes(b"x")
        listed = cache.entries()
        assert listed == sorted(listed)
        assert [p.stem for p in listed] == sorted(
            ("zz", "aa", "mm", "0b", "ZZ")
        )

    def test_entries_empty_when_dir_absent(self, tmp_path):
        assert ProfileCache(str(tmp_path / "nope")).entries() == []
