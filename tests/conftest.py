"""Shared fixtures: small kernels and machine configs that keep the
timing-simulation tests fast while exercising every code path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GPUConfig, SamplingConfig
from repro.trace import BlockTrace, KernelTrace, LaunchTrace, WarpTrace
from repro.workloads.base import LaunchSpec, Segment, build_kernel


@pytest.fixture
def small_gpu() -> GPUConfig:
    """A 4-SM machine: fast to simulate, still multi-SM."""
    return GPUConfig(num_sms=4, warps_per_sm=16)


@pytest.fixture
def sampling() -> SamplingConfig:
    return SamplingConfig()


def make_uniform_kernel(
    num_launches: int = 2,
    blocks_per_launch: int = 96,
    warps_per_block: int = 4,
    insts_per_warp: int = 32,
    mem_ratio: float = 0.1,
    seed: int = 7,
    name: str = "uniform",
    **segment_kwargs,
) -> KernelTrace:
    """A kernel of identical launches made of identical thread blocks."""
    spec = LaunchSpec(
        segments=(
            Segment(
                count=blocks_per_launch,
                insts_per_warp=insts_per_warp,
                mem_ratio=mem_ratio,
                **segment_kwargs,
            ),
        ),
        warps_per_block=warps_per_block,
    )
    return build_kernel(name, "test", "regular", [spec] * num_launches, seed)


def make_two_phase_kernel(
    blocks_per_segment: int = 96,
    warps_per_block: int = 4,
    seed: int = 11,
) -> KernelTrace:
    """One launch with two behaviourally distinct contiguous segments —
    the minimal input on which region identification finds two regions."""
    spec = LaunchSpec(
        segments=(
            Segment(
                count=blocks_per_segment,
                insts_per_warp=32,
                mem_ratio=0.05,
                locality=0.8,
            ),
            Segment(
                count=blocks_per_segment,
                insts_per_warp=32,
                mem_ratio=0.25,
                locality=0.2,
                coalesce_mean=4.0,
            ),
        ),
        warps_per_block=warps_per_block,
    )
    return build_kernel("twophase", "test", "irregular", [spec], seed)


@pytest.fixture
def uniform_kernel() -> KernelTrace:
    return make_uniform_kernel()


@pytest.fixture
def two_phase_kernel() -> KernelTrace:
    return make_two_phase_kernel()


def make_manual_launch(
    per_block_insts: list[int],
    mem_every: int = 4,
    warps_per_block: int = 1,
    name: str = "manual",
) -> LaunchTrace:
    """A launch whose block sizes are given explicitly — for tests that
    need exact control over per-block instruction counts."""
    from repro.trace.instruction import OP_ALU, OP_MEM_GLOBAL

    def factory(tb_id: int) -> BlockTrace:
        n = per_block_insts[tb_id]
        op = np.full(n, OP_ALU, dtype=np.uint8)
        mem_req = np.zeros(n, dtype=np.uint8)
        if mem_every:
            op[::mem_every] = OP_MEM_GLOBAL
            mem_req[::mem_every] = 1
        addr = np.arange(n, dtype=np.int64) * 128 + tb_id * 65536
        warps = [
            WarpTrace(
                op,
                np.full(n, 32, dtype=np.uint8),
                mem_req,
                addr,
                np.full(n, 128, dtype=np.int64),
                np.zeros(n, dtype=np.uint16),
            )
            for _ in range(warps_per_block)
        ]
        return BlockTrace(tb_id, warps)

    return LaunchTrace(
        kernel_name=name,
        launch_id=0,
        num_blocks=len(per_block_insts),
        warps_per_block=warps_per_block,
        factory=factory,
        num_bbs=1,
    )
