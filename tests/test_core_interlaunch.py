"""Tests for inter-launch sampling (Section III)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.interlaunch import plan_inter_launch, trivial_plan
from repro.profiler import profile_kernel

from tests.conftest import make_uniform_kernel
from repro.workloads.base import LaunchSpec, Segment, build_kernel


def two_cluster_kernel():
    """Four launches: two small light ones, two big heavy ones."""
    light = LaunchSpec(
        segments=(Segment(count=64, insts_per_warp=32, mem_ratio=0.05),),
        warps_per_block=4,
        data_key=0,
    )
    heavy = LaunchSpec(
        segments=(
            Segment(
                count=192,
                insts_per_warp=64,
                mem_ratio=0.25,
                coalesce_mean=4.0,
                pattern="gather",
            ),
        ),
        warps_per_block=4,
        data_key=1,
    )
    return build_kernel(
        "two", "test", "regular", [light, heavy, light, heavy], 3
    )


class TestPlanInterLaunch:
    def test_identical_launches_one_cluster(self):
        kernel = make_uniform_kernel(num_launches=4)
        # Identical specs but per-launch data: near-identical features.
        profile = profile_kernel(kernel)
        plan = plan_inter_launch(profile, SamplingConfig(inter_threshold=0.2))
        assert plan.num_clusters == 1
        assert len(plan.simulated_launches) == 1

    def test_two_behaviour_classes_two_clusters(self):
        profile = profile_kernel(two_cluster_kernel())
        plan = plan_inter_launch(profile)
        assert plan.num_clusters == 2
        assert plan.cluster_of(0) == plan.cluster_of(2)
        assert plan.cluster_of(1) == plan.cluster_of(3)
        assert plan.cluster_of(0) != plan.cluster_of(1)

    def test_representative_is_cluster_member(self):
        profile = profile_kernel(two_cluster_kernel())
        plan = plan_inter_launch(profile)
        for launch_id in range(plan.num_launches):
            rep = plan.representative_of(launch_id)
            assert plan.cluster_of(rep) == plan.cluster_of(launch_id)

    def test_zero_threshold_splits_everything_distinct(self):
        profile = profile_kernel(two_cluster_kernel())
        plan = plan_inter_launch(profile, SamplingConfig(inter_threshold=0.0))
        # Identical data_key launches remain together even at sigma=0.
        assert plan.num_clusters == 2

    def test_cluster_sizes_sum_to_launches(self):
        profile = profile_kernel(two_cluster_kernel())
        plan = plan_inter_launch(profile)
        assert plan.cluster_sizes().sum() == plan.num_launches

    def test_extra_features_can_split_clusters(self):
        profile = profile_kernel(make_uniform_kernel(num_launches=4))
        # A synthetic BBV-style extra feature separating launch 0.
        extra = np.zeros((4, 1))
        extra[0, 0] = 10.0
        plan = plan_inter_launch(profile, extra_features=extra)
        assert plan.num_clusters == 2
        assert plan.cluster_sizes().min() == 1

    def test_extra_features_shape_checked(self):
        profile = profile_kernel(make_uniform_kernel(num_launches=4))
        with pytest.raises(ValueError):
            plan_inter_launch(profile, extra_features=np.zeros((3, 1)))


class TestTrivialPlan:
    def test_every_launch_simulated(self):
        profile = profile_kernel(make_uniform_kernel(num_launches=3))
        plan = trivial_plan(profile)
        assert plan.num_clusters == 3
        assert plan.simulated_launches == [0, 1, 2]
        for i in range(3):
            assert plan.representative_of(i) == i
